"""Sequential Minimal Optimization (Platt) from scratch.

Binary soft-margin SVC solving the dual

.. math::
    \\max_α Σα_i - ½ ΣΣ α_i α_j y_i y_j K(x_i, x_j)
    \\quad 0 ≤ α_i ≤ C, \\; Σ α_i y_i = 0

with the simplified-SMO pair-update loop (KKT-violating first index, random
second) — robust at the dataset sizes the experiments use, and the training
cost is superlinear in n, which is exactly why the cascade parallelisation
of ref [16] pays off.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.svm.kernels import Kernel, make_kernel


class SVC:
    """Binary soft-margin SVM with labels in {-1, +1}."""

    def __init__(self, C: float = 1.0, kernel: str = "rbf",
                 tol: float = 1e-3, max_passes: int = 5,
                 max_iter: Optional[int] = None, seed: int = 0,
                 **kernel_params) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        self.C = C
        self.kernel_name = kernel
        self.kernel_params = kernel_params
        self.kernel: Kernel = make_kernel(kernel, **kernel_params)
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed
        # Fitted state.
        self.support_vectors_: Optional[np.ndarray] = None
        self.support_alpha_y_: Optional[np.ndarray] = None
        self.b_: float = 0.0
        self.n_iter_: int = 0

    # -- training ----------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "SVC":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if set(np.unique(y)) - {-1.0, 1.0}:
            raise ValueError("labels must be in {-1, +1}")
        if len(np.unique(y)) < 2:
            raise ValueError("need both classes present")
        n = X.shape[0]
        rng = np.random.default_rng(self.seed)
        K = self.kernel(X, X)
        alpha = np.zeros(n)
        b = 0.0

        def f(i: int) -> float:
            return float((alpha * y) @ K[:, i] + b)

        # SMO's pair-update count grows with n; the default cap keeps total
        # cost O(n²) (each update is O(n)), matching observed SMO scaling —
        # the superlinearity the cascade parallelisation exploits.
        max_iter = self.max_iter if self.max_iter is not None else 25 * n
        passes = 0
        it = 0
        while passes < self.max_passes and it < max_iter:
            changed = 0
            for i in range(n):
                it += 1
                Ei = f(i) - y[i]
                if (y[i] * Ei < -self.tol and alpha[i] < self.C) or \
                   (y[i] * Ei > self.tol and alpha[i] > 0):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    Ej = f(j) - y[j]
                    ai_old, aj_old = alpha[i], alpha[j]
                    if y[i] != y[j]:
                        L = max(0.0, aj_old - ai_old)
                        H = min(self.C, self.C + aj_old - ai_old)
                    else:
                        L = max(0.0, ai_old + aj_old - self.C)
                        H = min(self.C, ai_old + aj_old)
                    if L >= H:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    aj = aj_old - y[j] * (Ei - Ej) / eta
                    aj = float(np.clip(aj, L, H))
                    if abs(aj - aj_old) < 1e-7:
                        continue
                    ai = ai_old + y[i] * y[j] * (aj_old - aj)
                    alpha[i], alpha[j] = ai, aj
                    b1 = b - Ei - y[i] * (ai - ai_old) * K[i, i] \
                        - y[j] * (aj - aj_old) * K[i, j]
                    b2 = b - Ej - y[i] * (ai - ai_old) * K[i, j] \
                        - y[j] * (aj - aj_old) * K[j, j]
                    if 0 < ai < self.C:
                        b = b1
                    elif 0 < aj < self.C:
                        b = b2
                    else:
                        b = 0.5 * (b1 + b2)
                    changed += 1
            passes = passes + 1 if changed == 0 else 0

        sv = alpha > 1e-8
        self.support_vectors_ = X[sv]
        self.support_alpha_y_ = (alpha * y)[sv]
        self.b_ = b
        self.n_iter_ = it
        return self

    # -- inference ------------------------------------------------------------------
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.support_vectors_ is None:
            raise RuntimeError("fit before predicting")
        if self.support_vectors_.shape[0] == 0:
            return np.full(len(X), self.b_)
        K = self.kernel(np.asarray(X, dtype=np.float64), self.support_vectors_)
        return K @ self.support_alpha_y_ + self.b_

    def predict(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_function(X)
        out = np.where(scores >= 0, 1.0, -1.0)
        return out

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())

    @property
    def n_support_(self) -> int:
        if self.support_vectors_ is None:
            raise RuntimeError("fit before querying support vectors")
        return int(self.support_vectors_.shape[0])

    def clone_unfitted(self) -> "SVC":
        return SVC(C=self.C, kernel=self.kernel_name, tol=self.tol,
                   max_passes=self.max_passes, max_iter=self.max_iter,
                   seed=self.seed, **self.kernel_params)


class MulticlassSVC:
    """One-vs-rest wrapper for multi-class problems (RS land cover)."""

    def __init__(self, **svc_kwargs) -> None:
        self.svc_kwargs = svc_kwargs
        self.classes_: Optional[np.ndarray] = None
        self.machines_: list[SVC] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MulticlassSVC":
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        self.machines_ = []
        for cls in self.classes_:
            binary = np.where(y == cls, 1.0, -1.0)
            machine = SVC(**self.svc_kwargs)
            machine.fit(X, binary)
            self.machines_.append(machine)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.classes_ is None:
            raise RuntimeError("fit before predicting")
        scores = np.stack([m.decision_function(X) for m in self.machines_], axis=1)
        return self.classes_[scores.argmax(axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(X) == np.asarray(y)).mean())
