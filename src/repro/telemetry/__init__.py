"""Unified telemetry: spans, metrics and cross-layer trace export.

The observability layer the paper's lessons-learned implicitly demand —
the authors tuned Horovod with its timeline tool and reasoned about
module-level placement from measured comms/compute interleaving.  This
package gives every subsystem in the reproduction (scheduler, MPI runtime,
distributed training, fault injection, storage tiers, online serving) one
shared instrument panel:

* :class:`Tracer` — nestable simulated-clock spans with subsystem tracks,
* :class:`MetricsRegistry` — labeled counters/gauges/histograms,
* exporters — one Chrome trace-event JSON across all layers, a
  Prometheus-style text dump, and a human-readable summary,
* process-wide defaults — instrumentation sites call :func:`get_tracer` /
  :func:`get_registry`; both default to disabled no-ops so untraced runs
  pay one attribute check per site.  :func:`capture` swaps in enabled
  instances for the duration of a traced scenario and restores the old
  ones afterwards.

Every capture is byte-deterministic for a given seed: spans order on
``(sim time, track, lane, seq)``, metric dumps sort their families, and
nothing reads the wall clock.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Optional

from repro.telemetry.export import (
    chrome_complete_event,
    chrome_instant_event,
    chrome_trace_json,
    run_summary,
    to_chrome_trace,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import Span, Tracer, validate_nesting

# -- process-wide defaults ---------------------------------------------------

#: Disabled singletons: the zero-cost path for uninstrumented runs.
_DISABLED_TRACER = Tracer(enabled=False)
_DISABLED_REGISTRY = MetricsRegistry(enabled=False)

_default_tracer: Tracer = _DISABLED_TRACER
_default_registry: MetricsRegistry = _DISABLED_REGISTRY
_swap_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumentation site records into."""
    return _default_tracer


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _default_registry


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install (or with ``None`` reset) the default tracer; returns the old."""
    global _default_tracer
    with _swap_lock:
        old = _default_tracer
        _default_tracer = tracer if tracer is not None else _DISABLED_TRACER
    return old


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install (or with ``None`` reset) the default registry; returns the old."""
    global _default_registry
    with _swap_lock:
        old = _default_registry
        _default_registry = registry if registry is not None \
            else _DISABLED_REGISTRY
    return old


@contextmanager
def capture(tracer: Optional[Tracer] = None,
            registry: Optional[MetricsRegistry] = None):
    """Run a scenario with fresh, enabled telemetry defaults.

    >>> with telemetry.capture() as (tracer, registry):
    ...     simulate_serving(config)
    >>> trace_json = chrome_trace_json(tracer.spans)

    The previous defaults are restored on exit, so captures never leak
    into each other — the property that makes same-seed captures
    byte-identical.
    """
    tracer = tracer if tracer is not None else Tracer(enabled=True)
    registry = registry if registry is not None else MetricsRegistry(enabled=True)
    old_tracer = set_tracer(tracer)
    old_registry = set_registry(registry)
    try:
        yield tracer, registry
    finally:
        set_tracer(old_tracer)
        set_registry(old_registry)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "capture",
    "chrome_complete_event",
    "chrome_instant_event",
    "chrome_trace_json",
    "get_registry",
    "get_tracer",
    "run_summary",
    "set_registry",
    "set_tracer",
    "to_chrome_trace",
    "validate_nesting",
]
