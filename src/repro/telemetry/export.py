"""Exporters: one Chrome trace across every subsystem, plus metrics dumps.

The Chrome trace-event JSON (``chrome://tracing`` / Perfetto) is the lingua
franca the paper's tuning workflow leaned on via Horovod's timeline tool.
Here it is generalised: every telemetry ``track`` (scheduler, mpi, train,
storage, serving, faults) becomes one trace *process* with a readable
``process_name``, every ``lane`` within it one *thread*, and all spans sit
on the single simulated timebase — so a faulted elastic-training run shows
scheduler placements, ring-allreduce steps, checkpoint writes and the
fault that caused them interleaved in one viewer.

:mod:`repro.distributed.timeline` (the original Horovod-style recorder)
delegates its per-event serialisation to :func:`chrome_complete_event`
below, so there is exactly one implementation of the event format.

All output is byte-deterministic for a given span list: processes/threads
are numbered in sorted order and events sort on the spans' deterministic
``(start, track, lane, seq)`` key.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span


def chrome_complete_event(
    name: str,
    category: str,
    pid: int,
    tid: int,
    start_s: float,
    duration_s: float,
    args: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """One Chrome 'X' (complete) event; timestamps in µs of simulated time."""
    return {
        "name": name,
        "cat": category,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": start_s * 1e6,
        "dur": duration_s * 1e6,
        "args": dict(args or {}),
    }


def chrome_instant_event(
    name: str,
    category: str,
    pid: int,
    tid: int,
    t_s: float,
    args: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """One Chrome 'i' (instant) event, thread-scoped."""
    return {
        "name": name,
        "cat": category,
        "ph": "i",
        "s": "t",
        "pid": pid,
        "tid": tid,
        "ts": t_s * 1e6,
        "args": dict(args or {}),
    }


def _metadata_event(name: str, pid: int, tid: Optional[int],
                    value: Any) -> dict[str, Any]:
    evt: dict[str, Any] = {"name": name, "ph": "M", "pid": pid,
                           "args": {"name": value} if isinstance(value, str)
                           else {"sort_index": value}}
    if tid is not None:
        evt["tid"] = tid
    return evt


def assign_ids(spans: Iterable[Span]) -> tuple[dict[str, int],
                                               dict[tuple[str, str], int]]:
    """Deterministic pid per track, tid per (track, lane)."""
    tracks = sorted({s.track for s in spans})
    pids = {track: i + 1 for i, track in enumerate(tracks)}
    tids: dict[tuple[str, str], int] = {}
    for track in tracks:
        lanes = sorted({s.lane for s in spans if s.track == track})
        for j, lane in enumerate(lanes):
            tids[(track, lane)] = j
    return pids, tids


def to_chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """The unified trace: metadata naming each track/lane, then all events
    in deterministic ``(start, track, lane, seq)`` order."""
    spans = sorted(spans, key=Span.sort_key)
    pids, tids = assign_ids(spans)
    events: list[dict[str, Any]] = []
    for track, pid in sorted(pids.items()):
        events.append(_metadata_event("process_name", pid, None, track))
        events.append(_metadata_event("process_sort_index", pid, None, pid))
        for (t, lane), tid in sorted(tids.items()):
            if t == track:
                events.append(_metadata_event("thread_name", pid, tid, lane))
    for s in spans:
        pid, tid = pids[s.track], tids[(s.track, s.lane)]
        if s.is_instant:
            events.append(chrome_instant_event(
                s.name, s.category, pid, tid, s.start_s, s.attr_dict()))
        else:
            events.append(chrome_complete_event(
                s.name, s.category, pid, tid, s.start_s, s.duration_s,
                s.attr_dict()))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: Iterable[Span]) -> str:
    """Byte-deterministic JSON of :func:`to_chrome_trace`."""
    return json.dumps(to_chrome_trace(spans), sort_keys=True,
                      separators=(",", ":"))


def run_summary(spans: Iterable[Span], registry: MetricsRegistry,
                title: str = "telemetry run summary") -> str:
    """Human-readable rollup: per-track span counts and busy time, then the
    full metrics dump.  Deterministic for a given capture."""
    spans = sorted(spans, key=Span.sort_key)
    rows = [title, "=" * len(title), ""]
    by_track: dict[str, list[Span]] = {}
    for s in spans:
        by_track.setdefault(s.track, []).append(s)
    rows.append(f"spans: {len(spans)} across {len(by_track)} subsystems")
    for track in sorted(by_track):
        ts = by_track[track]
        intervals = [s for s in ts if not s.is_instant]
        busy = sum(s.duration_s for s in intervals)
        lanes = {s.lane for s in ts}
        end = max((s.end_s for s in ts), default=0.0)
        rows.append(
            f"  {track:<10}: {len(ts):5d} spans "
            f"({len(ts) - len(intervals)} instants), {len(lanes)} lanes, "
            f"busy {busy:.6g} s, horizon {end:.6g} s")
    rows += ["", "metrics:", registry.to_text(indent="  ")]
    return "\n".join(rows) + "\n"
