"""The metrics half of the telemetry layer: one registry, labeled families.

Every subsystem publishes counters, gauges and histograms into a
:class:`MetricsRegistry` — ``collective_bytes{op="allreduce"}``,
``checkpoint_bytes_total{target="nam"}``,
``serving_requests_total{outcome="admitted"}`` — so a run's metrics dump is
one document regardless of how many layers contributed.  Percentile math
delegates to :mod:`repro.core.stats`, the same implementation every other
latency surface in the repo uses.

Determinism rules (the dumps are asserted byte-identical in tests):

* exposition sorts families by name and members by label values,
* histogram sums use ``math.fsum`` (exactly rounded, order-independent),
  so observations recorded concurrently by rank threads cannot introduce
  float-association jitter,
* counter increments from threaded contexts must be integral — bytes and
  call counts — which float addition represents exactly.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Iterable, Optional

from repro.core.stats import percentile

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _fmt_value(v: float) -> str:
    """Prometheus-style value: integers render without a decimal point."""
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(float(v))


def _fmt_labels(key: LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go anywhere."""

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A sample distribution; quantiles via :mod:`repro.core.stats`."""

    __slots__ = ("_values", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self._values: list[float] = []
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> float:
        with self._lock:
            return math.fsum(self._values)

    @property
    def values(self) -> list[float]:
        with self._lock:
            return list(self._values)

    def percentile(self, q: float) -> float:
        with self._lock:
            return percentile(self._values, q)


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for a disabled registry."""

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0.0
    count = 0
    sum = 0.0
    values: list[float] = []

    def percentile(self, q: float) -> float:
        raise ValueError("percentile of a disabled registry")


_NULL = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named families of labeled counters, gauges and histograms.

    ``registry.counter("collective_bytes", op="allreduce")`` get-or-creates
    the family member for that exact label set; re-registering a name with
    a different kind raises.  A disabled registry hands out shared no-op
    instruments, so instrumentation sites never need their own guard.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._kinds: dict[str, str] = {}
        self._families: dict[str, dict[LabelKey, Any]] = {}

    # -- family accessors ----------------------------------------------------
    def _get(self, kind: str, name: str, labels: dict[str, Any]):
        if not self.enabled:
            return _NULL
        key = _label_key(labels)
        with self._lock:
            existing = self._kinds.get(name)
            if existing is None:
                self._kinds[name] = kind
                self._families[name] = {}
            elif existing != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {existing}, "
                    f"not {kind}")
            family = self._families[name]
            inst = family.get(key)
            if inst is None:
                inst = _KINDS[kind](self._lock)
                family[key] = inst
            return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get("histogram", name, labels)

    # -- reading -------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def kind(self, name: str) -> str:
        return self._kinds[name]

    def members(self, name: str) -> list[tuple[LabelKey, Any]]:
        with self._lock:
            return sorted(self._families.get(name, {}).items())

    def value(self, name: str, **labels: Any) -> float:
        """Convenience: current value of a counter/gauge member (0 if absent)."""
        family = self._families.get(name, {})
        inst = family.get(_label_key(labels))
        return inst.value if inst is not None else 0.0

    def gauges_over(self, threshold: float = 0.0,
                    name_contains: str = "") -> list[tuple[str, LabelKey, float]]:
        """Gauge members above ``threshold`` — the CI invariant check."""
        out = []
        for name in self.names():
            if self._kinds[name] != "gauge" or name_contains not in name:
                continue
            for key, g in self.members(name):
                if g.value > threshold:
                    out.append((name, key, g.value))
        return out

    # -- exposition ----------------------------------------------------------
    def to_prometheus(self) -> str:
        """Prometheus text exposition, deterministically ordered."""
        lines: list[str] = []
        for name in self.names():
            kind = self._kinds[name]
            lines.append(f"# TYPE {name} {kind}")
            for key, inst in self.members(name):
                if kind == "histogram":
                    labels = dict(key)
                    lines.append(f"{name}_count{_fmt_labels(key)} "
                                 f"{_fmt_value(inst.count)}")
                    lines.append(f"{name}_sum{_fmt_labels(key)} "
                                 f"{_fmt_value(inst.sum)}")
                    for q in (50.0, 95.0, 99.0):
                        if inst.count:
                            qkey = _label_key({**labels, "quantile": f"{q:g}"})
                            lines.append(f"{name}{_fmt_labels(qkey)} "
                                         f"{_fmt_value(inst.percentile(q))}")
                else:
                    lines.append(f"{name}{_fmt_labels(key)} "
                                 f"{_fmt_value(inst.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_text(self, indent: str = "") -> str:
        """Human-readable run summary of every family."""
        rows: list[str] = []
        for name in self.names():
            kind = self._kinds[name]
            for key, inst in self.members(name):
                label = _fmt_labels(key)
                if kind == "histogram":
                    if inst.count:
                        rows.append(
                            f"{indent}{name}{label}: n={inst.count} "
                            f"sum={inst.sum:.6g} p50={inst.percentile(50):.6g} "
                            f"p99={inst.percentile(99):.6g}")
                    else:
                        rows.append(f"{indent}{name}{label}: n=0")
                else:
                    rows.append(f"{indent}{name}{label}: "
                                f"{_fmt_value(inst.value)}")
        return "\n".join(rows)
