"""Canonical traced scenarios behind ``repro trace``.

Two end-to-end runs, each executed under :func:`repro.telemetry.capture`
so every instrumented layer records into one tracer/registry pair:

* :func:`trace_training_scenario` — a faulted batch workload through the
  MSA scheduler (node crashes, requeues) *plus* a faulted elastic
  training run (rank kills, ULFM shrink, NAM/PFS checkpoint-restart).
  The resulting trace carries five subsystem tracks — ``scheduler``,
  ``mpi``, ``train``, ``storage`` and ``faults`` — on one simulated
  timebase.
* :func:`trace_serving_scenario` — an online-serving run with admission
  control, micro-batching, a replica crash mid-run and the autoscaler
  active; tracks ``serving`` and ``faults``.

Everything is seed-driven: the same ``seed`` produces byte-identical
``trace.json`` / ``metrics.prom`` / ``summary.txt`` artifacts, which the
trace-determinism tests assert literally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.telemetry.export import chrome_trace_json, run_summary


@dataclass(frozen=True)
class TraceArtifacts:
    """The three exportable documents of one traced scenario run."""

    scenario: str
    seed: int
    trace_json: str          #: Chrome trace-event JSON (chrome://tracing)
    prometheus: str          #: Prometheus text exposition of the registry
    summary: str             #: human-readable rollup
    tracks: tuple[str, ...]  #: subsystem tracks present in the trace
    n_spans: int
    #: Gauges above zero whose name mentions "invariant" — must be empty.
    invariant_violations: tuple[tuple[str, tuple, float], ...]
    #: The raw spans (deterministic order) — for nesting validation.
    spans: tuple[telemetry.Span, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.invariant_violations


def _artifacts(scenario: str, seed: int, tracer: telemetry.Tracer,
               registry: telemetry.MetricsRegistry) -> TraceArtifacts:
    from repro.resilience.integrity import publish_undetected

    spans = tracer.spans
    # Reconcile the corruption ledger before exporting, so every trace's
    # metrics.prom/summary.txt carries the integrity counters and the
    # undetected gauge — and an unreconciled run fails like any other
    # invariant violation.
    undetected = publish_undetected(registry)
    violations = tuple(registry.gauges_over(0.0, name_contains="invariant"))
    if undetected > 0:
        violations += (("integrity_undetected", (), undetected),)
    return TraceArtifacts(
        scenario=scenario,
        seed=seed,
        trace_json=chrome_trace_json(spans),
        prometheus=registry.to_prometheus(),
        summary=run_summary(spans, registry,
                            title=f"repro trace {scenario} (seed {seed})"),
        tracks=tuple(tracer.tracks()),
        n_spans=len(spans),
        invariant_violations=violations,
        spans=tuple(spans),
    )


def trace_training_scenario(seed: int = 0, quick: bool = False
                            ) -> TraceArtifacts:
    """Faulted scheduler workload + faulted elastic training, one capture."""
    from repro.core.presets import small_msa_system
    from repro.core.jobs import synthetic_workload_mix
    from repro.core.scheduler import schedule_workload
    from repro.distributed.horovod import run_elastic_training
    from repro.ml.models import MLP
    from repro.resilience.faults import FaultInjector, FaultPlan
    from repro.resilience.policy import CheckpointPolicy
    from repro.storage.checkpoint import CheckpointManager
    from repro.storage.nam import NetworkAttachedMemory
    from repro.storage.pfs import ParallelFileSystem

    n_jobs = 4 if quick else 8
    n_steps = 8 if quick else 16
    world_size = 4
    kill_step = n_steps // 2

    rng = np.random.default_rng(seed)
    X = np.concatenate([rng.normal(-2.0, 1.0, size=(64, 2)),
                        rng.normal(2.0, 1.0, size=(64, 2))])
    Y = np.array([0] * 64 + [1] * 64)

    with telemetry.capture() as (tracer, registry):
        # 1) The batch side: a workload mix with node crashes mid-run.
        system = small_msa_system()
        targets = {key: module.n_nodes
                   for key, module in system.compute_modules().items()}
        plan = FaultPlan.random(seed, targets=targets, horizon_s=40_000.0,
                                n_crashes=2, repair_s=1_200.0)
        schedule_workload(
            system,
            synthetic_workload_mix(n_jobs=n_jobs, seed=seed,
                                   mean_interarrival_s=600.0),
            fault_injector=FaultInjector(plan),
        )

        # 2) The training side: rank kills + silent corruption (a gradient
        # bitflip and checkpoint rot) + NAM-first checkpoint-restart, so
        # the trace's metrics expose the integrity counters.
        manager = CheckpointManager(
            nam=NetworkAttachedMemory(capacity_GB=1),
            pfs=ParallelFileSystem("pfs", n_targets=4))
        train_plan = FaultPlan.rank_kills(seed, {kill_step: [1]}).merged(
            FaultPlan.silent_corruption(
                seed,
                gradient={max(1, n_steps // 4): [2]},
                checkpoint_rot=[(n_steps - 2, "nam")]))
        run_elastic_training(
            model_factory=lambda: MLP([2, 8, 2], seed=3),
            X=X, Y=Y,
            n_steps=n_steps,
            batch_size=16,
            world_size=world_size,
            seed=seed,
            fault_plan=train_plan,
            checkpoint_manager=manager,
            checkpoint_policy=CheckpointPolicy(every_steps=4,
                                               replicate=True),
            name="trace-train",
        )
    return _artifacts("train", seed, tracer, registry)


def trace_serving_scenario(seed: int = 0, quick: bool = False
                           ) -> TraceArtifacts:
    """Online serving under load with a replica crash and autoscaling."""
    from repro.core.presets import small_msa_system
    from repro.resilience.faults import (
        FaultInjector,
        FaultKind,
        FaultPlan,
        FaultSpec,
    )
    from repro.serving.engine import ServingConfig, simulate_serving
    from repro.serving.request import ArrivalPattern, TraceConfig
    from repro.serving.batcher import BatchPolicy
    from repro.serving.admission import AdmissionPolicy
    from repro.serving.replicas import AutoscalerConfig

    duration = 10.0 if quick else 25.0
    config = ServingConfig(
        trace=TraceConfig(pattern=ArrivalPattern.POISSON, rate_per_s=120.0,
                          duration_s=duration, samples_per_request=32,
                          seed=seed, key_universe=1 << 20),
        batch=BatchPolicy(),
        admission=AdmissionPolicy(max_queue_depth=256),
        autoscaler=AutoscalerConfig(enabled=True, min_replicas=2,
                                    max_replicas=8),
        initial_replicas=2,
        cache_capacity=128,
    )
    plan = FaultPlan(seed=seed, specs=(
        FaultSpec(kind=FaultKind.NODE_CRASH, time=duration / 5.0,
                  module="esb", node=0, duration=5.0),))
    with telemetry.capture() as (tracer, registry):
        report = simulate_serving(config, system=small_msa_system(),
                                  fault_injector=FaultInjector(plan),
                                  registry=registry)
        report.metrics.check_conservation()
    return _artifacts("serve", seed, tracer, registry)


SCENARIOS = {
    "train": trace_training_scenario,
    "serve": trace_serving_scenario,
}
