"""Spans: the tracing half of the unified telemetry layer.

A :class:`Span` is one named interval on the *simulated* clock, tagged with
the subsystem it came from (``track``) and the lane within that subsystem
(``lane`` — a rank, a module key, a replica id).  A :class:`Tracer`
collects spans from every instrumented layer — scheduler decisions, MPI
collectives, training steps, fault injections, storage transfers, serving
stages — into one buffer that the exporters
(:mod:`repro.telemetry.export`) turn into a single Chrome trace.

Determinism is a design requirement, not an accident: every span carries a
per-``(track, lane)`` sequence number assigned under a lock, so even spans
recorded concurrently by SPMD rank threads sort into exactly one order
(``(start_s, track, lane, seq)``).  Same seed → byte-identical trace, which
is what lets the tests assert on trace artifacts.

The tracer is cheap when disabled: every instrumentation site checks
``tracer.enabled`` before touching the clock, so a production run with
telemetry off pays one attribute load per site.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterable, NamedTuple

#: Well-known span categories (the Chrome trace ``cat`` field).  Free-form
#: strings are allowed; these are the ones the built-in instrumentation uses.
CATEGORIES = ("scheduler", "comm", "compute", "train", "fault", "storage",
              "serving", "io")


class Span(NamedTuple):
    """One interval (or instant) on the simulated clock.

    A NamedTuple rather than a dataclass: spans are recorded on the hot
    path of every instrumented site, and tuple construction is what keeps
    the enabled tracer's overhead inside the E15 budget.
    """

    name: str
    category: str
    start_s: float
    duration_s: float
    track: str = "main"          # subsystem: "scheduler" | "mpi" | "serving" ...
    lane: str = "0"              # rank / module key / replica id within track
    seq: int = 0                 # per-(track, lane) recording order
    attrs: tuple[tuple[str, Any], ...] = ()

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    @property
    def is_instant(self) -> bool:
        return self.duration_s == 0.0

    def attr_dict(self) -> dict[str, Any]:
        return dict(self.attrs)

    def sort_key(self) -> tuple:
        return (self.start_s, self.track, self.lane, self.seq)


class Tracer:
    """Thread-safe span collector over the simulated clock.

    ``enabled=False`` makes every recording method a no-op — the default
    process-wide tracer ships disabled so uninstrumented runs pay nothing
    and hold nothing.  :func:`repro.telemetry.capture` swaps in an enabled
    tracer for the duration of a traced scenario.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        # Raw (pre-seq) records.  list.append is atomic under the GIL, so
        # the hot path needs no lock; the lock only guards snapshot/clear.
        self._raw: list[tuple] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._raw)

    # -- recording -----------------------------------------------------------
    def record(self, name: str, category: str, start_s: float,
               duration_s: float, track: str = "main", lane: str = "0",
               **attrs: Any) -> None:
        """Record a completed span (caller supplies sim-time start/duration).

        Seq numbers are assigned lazily at snapshot time from the append
        order: within one ``(track, lane)`` that order is the lane's own
        happens-before order (a lane is written by one logical actor), so
        the deferred assignment is both deterministic and lock-free here.
        Attrs keep call-site kwarg order; the JSON exporter sorts keys, so
        trace bytes don't depend on it.
        """
        if not self.enabled:
            return
        if duration_s < 0:
            raise ValueError(f"span {name!r} has negative duration")
        self._raw.append((name, category, start_s, duration_s, track, lane,
                          tuple(attrs.items())))

    def instant(self, name: str, category: str, t_s: float,
                track: str = "main", lane: str = "0", **attrs: Any) -> None:
        """Record a zero-duration marker (fault fired, job submitted, ...)."""
        if not self.enabled:
            return
        self._raw.append((name, category, t_s, 0.0, track, lane,
                          tuple(attrs.items())))

    @contextmanager
    def span(self, name: str, category: str, clock: Callable[[], float],
             track: str = "main", lane: str = "0", **attrs: Any):
        """Context manager reading ``clock()`` (a sim-time source) at
        enter/exit.  With tracing disabled the clock is never called."""
        if not self.enabled:
            yield
            return
        start = clock()
        try:
            yield
        finally:
            self.record(name, category, start, clock() - start,
                        track=track, lane=lane, **attrs)

    # -- reading -------------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """A deterministically ordered snapshot of everything recorded."""
        with self._lock:
            snapshot = list(self._raw)
        seq: dict[tuple[str, str], int] = {}
        spans = []
        for name, category, start_s, duration_s, track, lane, attrs in snapshot:
            key = (track, lane)
            n = seq.get(key, 0)
            seq[key] = n + 1
            spans.append(Span(name, category, start_s, duration_s,
                              track, lane, n, attrs))
        return sorted(spans, key=Span.sort_key)

    def tracks(self) -> list[str]:
        return sorted({s.track for s in self.spans})

    def by_track(self, track: str) -> list[Span]:
        return [s for s in self.spans if s.track == track]

    def by_category(self, category: str) -> list[Span]:
        return [s for s in self.spans if s.category == category]

    def clear(self) -> None:
        with self._lock:
            self._raw.clear()


def validate_nesting(spans: Iterable[Span], tol: float = 1e-9
                     ) -> list[tuple[Span, Span]]:
    """Check spans nest properly within each ``(track, lane)``.

    Two spans on the same lane must either be disjoint or one must contain
    the other — a partial overlap means an instrumentation bug (an "end"
    recorded against the wrong clock).  Returns the offending
    ``(outer, inner)`` pairs; an empty list means the trace is well-formed.
    Instants are exempt (they sit *at* boundaries by construction).
    """
    violations: list[tuple[Span, Span]] = []
    lanes: dict[tuple[str, str], list[Span]] = {}
    for s in spans:
        if not s.is_instant:
            lanes.setdefault((s.track, s.lane), []).append(s)
    for lane_spans in lanes.values():
        # Parents before children: earlier start first, longer span first.
        lane_spans.sort(key=lambda s: (s.start_s, -s.end_s, s.seq))
        stack: list[Span] = []
        for s in lane_spans:
            while stack and s.start_s >= stack[-1].end_s - tol:
                stack.pop()
            if stack and s.end_s > stack[-1].end_s + tol:
                violations.append((stack[-1], s))
            stack.append(s)
    return violations
