"""Interoperability workflows: containers, Jupyter, CBRAIN, cloud costs.

The paper devotes Sec. III-B and IV to interoperability lessons: Docker
images converted to Singularity on JUWELS, Jupyter kernels defined against
HPC module environments so medical experts never see the MSA's complexity,
the CBRAIN→Bourreau→JUWELS neuroscience path, and why 128-GPU studies stay
on HPC grants rather than $24/h cloud instances.  These models capture the
structure of those workflows with checkable compatibility rules.

* :mod:`repro.workflows.containers` — images, registries, Docker→Singularity,
* :mod:`repro.workflows.jupyter` — kernel specs over module environments,
* :mod:`repro.workflows.cbrain` — portal/Bourreau execution routing,
* :mod:`repro.workflows.cloud` — cloud GPU pricing vs HPC grants (E11).
"""

from repro.workflows.containers import (
    ContainerImage,
    ContainerRegistry,
    ContainerRuntime,
    singularity_from_docker,
)
from repro.workflows.jupyter import JupyterKernelSpec, JupyterSession, ModuleEnvironment
from repro.workflows.cbrain import CbrainPortal, Bourreau, NeuroTool, DataLadDataset
from repro.workflows.cloud import CloudInstanceType, CloudCostModel, AWS_P3_16XLARGE

__all__ = [
    "ContainerImage",
    "ContainerRegistry",
    "ContainerRuntime",
    "singularity_from_docker",
    "JupyterKernelSpec",
    "JupyterSession",
    "ModuleEnvironment",
    "CbrainPortal",
    "Bourreau",
    "NeuroTool",
    "DataLadDataset",
    "CloudInstanceType",
    "CloudCostModel",
    "AWS_P3_16XLARGE",
]
