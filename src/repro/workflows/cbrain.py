"""CBRAIN ↔ JUWELS neuroscience interoperability (Sec. IV-C, HIBALL).

"We enabled interoperability by using container technologies such as
Singularity on JUWELS and Docker-based environments available in the CBRAIN
resource execution managed by the Bourreau system ... that also includes
the use of the DataLad tool for managing TB and PB of relevant BigBrain
datasets."

Model: a :class:`CbrainPortal` registers :class:`Bourreau` executors (one
per computing site); a :class:`NeuroTool` ships as a Docker image; the
portal converts it to the target runtime's format, verifies the tool's
DataLad dataset is installed at the site, and routes execution — all
preconfigured so "the user-friendly CBRAIN portal enables the use of the
complex MSA-based system JUWELS without knowing the details".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.workflows.containers import (
    ContainerError,
    ContainerImage,
    ContainerRuntime,
    singularity_from_docker,
)


class CbrainError(RuntimeError):
    """Raised for failed portal operations."""


@dataclass(frozen=True)
class DataLadDataset:
    """A version-controlled dataset reference (content fetched lazily)."""

    name: str
    version: str
    size_TB: float

    @property
    def ref(self) -> str:
        return f"{self.name}@{self.version}"


@dataclass
class NeuroTool:
    """A registered neuroscience tool (e.g. a BigBrain segmentation)."""

    name: str
    image: ContainerImage
    requires_dataset: Optional[DataLadDataset] = None


@dataclass
class Bourreau:
    """A CBRAIN execution server fronting one computing site."""

    name: str
    site: str                            # e.g. "JUWELS", "ComputeCanada"
    runtime: ContainerRuntime
    installed_datasets: dict[str, DataLadDataset] = field(default_factory=dict)
    executions: list[str] = field(default_factory=list)

    def install_dataset(self, ds: DataLadDataset) -> None:
        self.installed_datasets[ds.ref] = ds

    def execute(self, tool: NeuroTool) -> str:
        image = tool.image
        if image.format == "docker" and self.runtime.format == "singularity":
            image = singularity_from_docker(image)
        if tool.requires_dataset is not None and \
                tool.requires_dataset.ref not in self.installed_datasets:
            raise CbrainError(
                f"{self.site}: dataset {tool.requires_dataset.ref} not "
                "installed — run `datalad get` first"
            )
        token = self.runtime.run(image)
        self.executions.append(f"{tool.name}@{self.site}")
        return token


class CbrainPortal:
    """The user-facing portal: tools + bourreaux + transparent routing."""

    def __init__(self) -> None:
        self._tools: dict[str, NeuroTool] = {}
        self._bourreaux: dict[str, Bourreau] = {}

    def register_tool(self, tool: NeuroTool) -> None:
        self._tools[tool.name] = tool

    def register_bourreau(self, bourreau: Bourreau) -> None:
        self._bourreaux[bourreau.site] = bourreau

    @property
    def sites(self) -> list[str]:
        return sorted(self._bourreaux)

    def runnable_sites(self, tool_name: str) -> list[str]:
        """Sites where a tool can actually run (format/GPU/dataset checks)."""
        tool = self._tool(tool_name)
        out = []
        for site, bourreau in sorted(self._bourreaux.items()):
            image = tool.image
            if image.format == "docker" and bourreau.runtime.format == "singularity":
                image = singularity_from_docker(image)
            ok, _ = bourreau.runtime.can_run(image)
            if not ok:
                continue
            if tool.requires_dataset is not None and \
                    tool.requires_dataset.ref not in bourreau.installed_datasets:
                continue
            out.append(site)
        return out

    def launch(self, tool_name: str, site: Optional[str] = None) -> str:
        """Run a tool; the portal picks a site when none is given."""
        tool = self._tool(tool_name)
        candidates = self.runnable_sites(tool_name)
        if not candidates:
            raise CbrainError(f"no site can run {tool_name!r}")
        chosen = site if site is not None else candidates[0]
        if chosen not in candidates:
            raise CbrainError(f"{chosen} cannot run {tool_name!r} "
                              f"(candidates: {candidates})")
        return self._bourreaux[chosen].execute(tool)

    def _tool(self, name: str) -> NeuroTool:
        try:
            return self._tools[name]
        except KeyError:
            raise CbrainError(f"tool {name!r} not registered") from None
