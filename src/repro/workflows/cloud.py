"""Cloud GPU economics vs HPC grants (Sec. III-B, E11).

The paper: "working with commercial clouds is still challenging when using
cutting-edge GPU types required for DL because of high costs (e.g., AWS EC2
24 USD per hour rate for V100, i.e., p3.16xlarge).  Our RESNET-50 studies
... using 128 GPUs for many hours, hence, we need to use still the
cost-free HPC computational time grants".

The model prices a distributed-training campaign on cloud instances and
contrasts it with an HPC grant allocation, including the paper's other
cloud lesson: free tiers assign *varying* GPU types and cannot interconnect
GPUs, making speed-up studies infeasible there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.hardware import GpuSpec, NVIDIA_V100


@dataclass(frozen=True)
class CloudInstanceType:
    """A rentable GPU instance."""

    name: str
    gpus_per_instance: int
    gpu: GpuSpec
    usd_per_hour: float
    interconnected: bool = True       # can instances form one training job?

    def instances_for(self, n_gpus: int) -> int:
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        return -(-n_gpus // self.gpus_per_instance)


#: The paper's example: p3.16xlarge, 8× V100, $24/h.
AWS_P3_16XLARGE = CloudInstanceType(
    name="p3.16xlarge", gpus_per_instance=8, gpu=NVIDIA_V100,
    usd_per_hour=24.0,
)

#: Free-tier notebooks: one GPU of *varying* type, never interconnected.
FREE_TIER_COLAB = CloudInstanceType(
    name="colab-free", gpus_per_instance=1, gpu=NVIDIA_V100,
    usd_per_hour=0.0, interconnected=False,
)


@dataclass(frozen=True)
class CampaignSpec:
    """A training campaign: so many GPUs for so many hours, so many runs."""

    n_gpus: int
    hours_per_run: float
    n_runs: int = 1

    @property
    def gpu_hours(self) -> float:
        return self.n_gpus * self.hours_per_run * self.n_runs


@dataclass
class CloudCostModel:
    """Price a campaign on cloud instances or against an HPC grant."""

    instance: CloudInstanceType = AWS_P3_16XLARGE

    def cloud_cost_usd(self, campaign: CampaignSpec) -> float:
        if campaign.n_gpus > self.instance.gpus_per_instance and \
                not self.instance.interconnected:
            raise ValueError(
                f"{self.instance.name} cannot interconnect GPUs across "
                "instances — multi-GPU scaling studies are infeasible there"
            )
        n_inst = self.instance.instances_for(campaign.n_gpus)
        return n_inst * self.instance.usd_per_hour \
            * campaign.hours_per_run * campaign.n_runs

    def grant_cost_usd(self, campaign: CampaignSpec,
                       grant_gpu_hours: float) -> float:
        """An HPC grant is free up to its allocation; beyond it, no capacity."""
        if campaign.gpu_hours > grant_gpu_hours:
            raise ValueError(
                f"campaign needs {campaign.gpu_hours:.0f} GPUh, grant has "
                f"{grant_gpu_hours:.0f}"
            )
        return 0.0

    def speedup_study_feasible(self, max_gpus: int) -> bool:
        """Free tiers fail this: no interconnect and varying GPU types."""
        return self.instance.interconnected or max_gpus <= \
            self.instance.gpus_per_instance
