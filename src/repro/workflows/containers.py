"""Container interoperability: Docker in clouds, Singularity on JUWELS.

Sec. III-B: "Singularity on JUWELS can work with Docker files available on
the DockerHub" — the conversion path that makes the same DL software stack
runnable on the MSA and in commercial clouds.  The model captures images
(layers, env, GPU hooks), registries, format conversion, and runtime
policy (HPC runtimes refuse privileged containers; GPU access requires the
image's CUDA stack to be compatible with the node's driver).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


class ContainerError(RuntimeError):
    """Raised for invalid container operations."""


@dataclass(frozen=True)
class ContainerImage:
    """An immutable container image."""

    name: str
    tag: str
    format: str                      # "docker" | "singularity"
    layers: tuple[str, ...]
    env: tuple[tuple[str, str], ...] = ()
    entrypoint: str = "/bin/sh"
    needs_gpu: bool = False
    cuda_version: Optional[str] = None
    privileged: bool = False

    def __post_init__(self) -> None:
        if self.format not in ("docker", "singularity"):
            raise ContainerError(f"unknown image format {self.format!r}")
        if not self.layers:
            raise ContainerError("an image needs at least one layer")
        if self.needs_gpu and self.cuda_version is None:
            raise ContainerError("GPU images must declare a CUDA version")

    @property
    def ref(self) -> str:
        return f"{self.name}:{self.tag}"

    def digest(self) -> str:
        """Content digest over layers+env (stable across format conversion)."""
        import hashlib

        h = hashlib.sha256()
        for layer in self.layers:
            h.update(layer.encode())
        for k, v in sorted(self.env):
            h.update(f"{k}={v}".encode())
        h.update(self.entrypoint.encode())
        return h.hexdigest()[:16]


def singularity_from_docker(image: ContainerImage) -> ContainerImage:
    """Convert a Docker image to Singularity (the JUWELS ingestion path).

    Layers, env and entrypoint are preserved; privilege is dropped —
    Singularity runs unprivileged on HPC by design.
    """
    if image.format != "docker":
        raise ContainerError("source image must be docker format")
    return replace(image, format="singularity", privileged=False)


class ContainerRegistry:
    """A DockerHub-like registry."""

    def __init__(self, name: str = "dockerhub") -> None:
        self.name = name
        self._images: dict[str, ContainerImage] = {}
        self.pull_count: dict[str, int] = {}

    def push(self, image: ContainerImage) -> None:
        self._images[image.ref] = image

    def pull(self, ref: str) -> ContainerImage:
        try:
            image = self._images[ref]
        except KeyError:
            raise ContainerError(f"{ref!r} not found in {self.name}") from None
        self.pull_count[ref] = self.pull_count.get(ref, 0) + 1
        return image

    def tags(self, name: str) -> list[str]:
        return sorted(
            ref.split(":", 1)[1]
            for ref in self._images
            if ref.split(":", 1)[0] == name
        )


@dataclass
class ContainerRuntime:
    """A runtime installed on a system (Docker in clouds, Singularity on MSA)."""

    name: str
    format: str                          # accepted image format
    allows_privileged: bool
    gpu_available: bool = False
    driver_cuda_version: Optional[str] = None

    def can_run(self, image: ContainerImage) -> tuple[bool, str]:
        """Compatibility check; returns (ok, reason)."""
        if image.format != self.format:
            return False, (f"{self.name} runs {self.format} images, "
                           f"got {image.format}")
        if image.privileged and not self.allows_privileged:
            return False, f"{self.name} refuses privileged containers"
        if image.needs_gpu:
            if not self.gpu_available:
                return False, "no GPU on this runtime"
            if self.driver_cuda_version is None:
                return False, "no CUDA driver installed"
            # CUDA minor-version compatibility: driver >= image requirement.
            drv = tuple(int(x) for x in self.driver_cuda_version.split("."))
            img = tuple(int(x) for x in image.cuda_version.split("."))
            if drv < img:
                return False, (f"driver CUDA {self.driver_cuda_version} < "
                               f"image CUDA {image.cuda_version}")
        return True, "ok"

    def run(self, image: ContainerImage) -> str:
        ok, reason = self.can_run(image)
        if not ok:
            raise ContainerError(reason)
        return f"{self.name}:{image.ref}:{image.digest()}"


def juwels_singularity(driver_cuda: str = "11.2") -> ContainerRuntime:
    """The JUWELS container runtime (Singularity, unprivileged, A100s)."""
    return ContainerRuntime(
        name="juwels-singularity", format="singularity",
        allows_privileged=False, gpu_available=True,
        driver_cuda_version=driver_cuda,
    )


def cloud_docker(driver_cuda: str = "11.0") -> ContainerRuntime:
    """A cloud VM's Docker runtime (privileged allowed, V100-class GPUs)."""
    return ContainerRuntime(
        name="cloud-docker", format="docker",
        allows_privileged=True, gpu_available=True,
        driver_cuda_version=driver_cuda,
    )
