"""Jupyter kernels over HPC module environments.

The paper (Secs. III-B, IV-A): "Using the MSA-based systems ... seamlessly
with Jupyter requires the definition of an own Kernel using the module
environment of the MSA HPC systems" — how medical experts use JUWELS
without seeing job scripts.  The model: module environments (the
``module load`` tree), kernel specs resolved against them, sessions that
bind a kernel to an MSA module, and kernel→cloud migration (a kernel spec
exports to a container).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.workflows.containers import ContainerImage


class KernelError(RuntimeError):
    """Raised when a kernel spec cannot be satisfied."""


@dataclass
class ModuleEnvironment:
    """An HPC 'module' tree: name → available versions."""

    system: str
    available: dict[str, list[str]] = field(default_factory=dict)

    def provide(self, name: str, versions: list[str]) -> "ModuleEnvironment":
        self.available[name] = sorted(versions)
        return self

    def resolve(self, name: str, constraint: Optional[str] = None) -> str:
        """Pick a version: exact match, or the newest if unconstrained."""
        versions = self.available.get(name)
        if not versions:
            raise KernelError(f"{self.system}: module {name!r} not installed")
        if constraint is None:
            return versions[-1]
        if constraint in versions:
            return constraint
        raise KernelError(
            f"{self.system}: {name} {constraint} unavailable "
            f"(have {versions})"
        )


@dataclass(frozen=True)
class JupyterKernelSpec:
    """A user-defined kernel: required modules + python packages."""

    name: str
    modules: tuple[tuple[str, Optional[str]], ...]   # (module, version|None)
    python_packages: tuple[str, ...] = ()
    display_name: str = ""

    def resolve(self, env: ModuleEnvironment) -> dict[str, str]:
        """Resolve every requirement; the version-matching pain the paper
        reports ('quite challenging to have the right versions')."""
        return {
            name: env.resolve(name, constraint)
            for name, constraint in self.modules
        }

    def to_container(self, base_layer: str = "ubuntu:20.04") -> ContainerImage:
        """Export as a Docker image — the kernel→cloud migration path."""
        layers = [base_layer]
        layers += [f"module:{name}" + (f"=={v}" if v else "")
                   for name, v in self.modules]
        layers += [f"pip:{pkg}" for pkg in self.python_packages]
        needs_gpu = any(name.lower() in ("cuda", "cudnn", "nvidia")
                        for name, _ in self.modules)
        return ContainerImage(
            name=f"kernel-{self.name}", tag="latest", format="docker",
            layers=tuple(layers),
            env=(("JUPYTER_KERNEL", self.name),),
            entrypoint="ipykernel",
            needs_gpu=needs_gpu,
            cuda_version="11.0" if needs_gpu else None,
        )


@dataclass
class JupyterSession:
    """A running notebook session bound to an MSA module."""

    kernel: JupyterKernelSpec
    environment: ModuleEnvironment
    target_module: str                  # e.g. "dam", "booster"
    resolved: dict[str, str] = field(default_factory=dict)
    started: bool = False

    def start(self) -> "JupyterSession":
        self.resolved = self.kernel.resolve(self.environment)
        self.started = True
        return self

    def execute(self, cell_source: str) -> str:
        """Abstracting-away check: users never write scheduler directives."""
        if not self.started:
            raise KernelError("session not started")
        forbidden = ("#SBATCH", "srun ", "sbatch ", "module load")
        for marker in forbidden:
            if marker in cell_source:
                raise KernelError(
                    f"notebook cells must not contain {marker!r} — the "
                    "kernel abstracts the HPC system away"
                )
        return f"executed-on:{self.environment.system}:{self.target_module}"


def jsc_module_environment() -> ModuleEnvironment:
    """A JUWELS-like software stack (the versions-matching exercise)."""
    env = ModuleEnvironment(system="JUWELS")
    env.provide("Python", ["3.8.5", "3.9.6"])
    env.provide("TensorFlow", ["2.3.1", "2.5.0"])
    env.provide("PyTorch", ["1.8.1", "1.10.0"])
    env.provide("Horovod", ["0.20.3", "0.24.2"])
    env.provide("CUDA", ["11.0", "11.2"])
    env.provide("cuDNN", ["8.0.5", "8.2.1"])
    env.provide("OpenMPI", ["4.1.0"])
    env.provide("Dask", ["2021.3.0"])
    return env
