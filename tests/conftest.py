"""Shared fixtures for the suite.

Centralises the setup that used to be duplicated across test modules:
the small DEEP-shaped system (``test_core_scheduler``), the InfiniBand
HDR fabric model (``test_mpi_gce`` / ``test_mpi_simclock``), the job
factories, and — for the resilience suite — seeded fault-plan factories,
so property tests over hundreds of seeds share one construction path.
"""

import numpy as np
import pytest

from repro.core import Job, JobPhase, WorkloadClass, small_msa_system
from repro.resilience import FaultPlan
from repro.simnet import CommCostModel, LinkKind


@pytest.fixture
def seeded_rng():
    """A deterministically seeded generator; never seed inline in a test."""
    return np.random.default_rng(0)


@pytest.fixture
def hdr_fabric():
    """The booster's InfiniBand HDR fabric cost model."""
    return CommCostModel.of_kind(LinkKind.INFINIBAND_HDR)


@pytest.fixture
def make_small_system():
    """Factory for fresh small MSA systems (tests needing several)."""
    return small_msa_system


@pytest.fixture
def small_system():
    """One small DEEP-shaped system: cm×8, esb×8, dam×2 + storage."""
    return small_msa_system()


@pytest.fixture
def gpu_job():
    """Factory for a single-phase GPU training job (lands on the ESB)."""
    def make(name="train", arrival=0.0, nodes=8):
        return Job(name=name, arrival_time=arrival, phases=[JobPhase(
            name="train", workload=WorkloadClass.ML_TRAINING,
            work_flops=1e17, nodes=nodes, parallel_fraction=0.99,
            uses_gpu=True, uses_tensor_cores=True)])
    return make


@pytest.fixture
def cpu_job():
    """Factory for a single-phase CPU simulation job (lands on the CM)."""
    def make(name="solve", arrival=0.0, nodes=2):
        return Job(name=name, arrival_time=arrival, phases=[JobPhase(
            name="solve", workload=WorkloadClass.SIMULATION_LOWSCALE,
            work_flops=1e14, nodes=nodes, parallel_fraction=0.9)])
    return make


@pytest.fixture
def make_fault_plan():
    """Factory for seeded random fault plans over the small system's shape.

    ``make_fault_plan(seed, n_crashes=2, ...)`` — all randomness resolves
    at construction, so the same arguments always replay the same faults.
    """
    def make(seed, targets=None, **kwargs):
        targets = targets or {"cm": 8, "esb": 8, "dam": 2}
        return FaultPlan.random(seed=seed, targets=targets, **kwargs)
    return make
