"""Mini-Spark: RDD semantics, shuffles, caching against memory tiers, and
the MLlib-like algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytics import (
    DecisionTree,
    MiniSparkContext,
    RandomForest,
    RddKMeans,
    RddLogisticRegression,
)
from repro.storage.tiers import TieredStore


@pytest.fixture
def ctx():
    return MiniSparkContext(n_partitions=4)


class TestRddBasics:
    def test_parallelize_collect_roundtrip(self, ctx):
        data = list(range(17))
        assert sorted(ctx.parallelize(data).collect()) == data

    def test_count_and_take(self, ctx):
        rdd = ctx.range(25)
        assert rdd.count() == 25
        assert len(rdd.take(5)) == 5

    def test_map_filter_flatmap(self, ctx):
        rdd = ctx.range(10).map(lambda x: x * 2).filter(lambda x: x > 10)
        assert sorted(rdd.collect()) == [12, 14, 16, 18]
        flat = ctx.parallelize(["a b", "c"]).flat_map(str.split)
        assert sorted(flat.collect()) == ["a", "b", "c"]

    def test_map_partitions(self, ctx):
        rdd = ctx.range(12).map_partitions(lambda part: [sum(part)])
        assert sum(rdd.collect()) == sum(range(12))
        assert rdd.count() == 4  # one value per partition

    def test_reduce_and_sum(self, ctx):
        assert ctx.range(10).reduce(lambda a, b: a + b) == 45
        assert ctx.range(10).sum() == 45

    def test_reduce_empty_raises(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([]).reduce(lambda a, b: a + b)

    def test_union(self, ctx):
        a = ctx.parallelize([1, 2])
        b = ctx.parallelize([3, 4])
        assert sorted(a.union(b).collect()) == [1, 2, 3, 4]

    def test_union_across_contexts_rejected(self, ctx):
        other = MiniSparkContext(n_partitions=4)
        with pytest.raises(ValueError):
            ctx.range(2).union(other.range(2))

    def test_laziness(self, ctx):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = ctx.range(5).map(spy)
        assert calls == []           # nothing ran yet
        rdd.collect()
        assert sorted(calls) == list(range(5))

    @given(st.lists(st.integers(-100, 100), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_map_preserves_count(self, data):
        ctx = MiniSparkContext(n_partitions=3)
        assert ctx.parallelize(data).map(lambda x: x + 1).count() == len(data)


class TestShuffles:
    def test_word_count(self, ctx):
        words = "the quick the lazy the dog".split()
        counts = dict(
            ctx.parallelize(words)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert counts == {"the": 3, "quick": 1, "lazy": 1, "dog": 1}

    def test_reduce_by_key_matches_python(self, ctx):
        rng = np.random.default_rng(0)
        pairs = [(int(k), int(v)) for k, v in
                 zip(rng.integers(0, 5, 100), rng.integers(0, 10, 100))]
        out = dict(ctx.parallelize(pairs)
                   .reduce_by_key(lambda a, b: a + b).collect())
        ref: dict = {}
        for k, v in pairs:
            ref[k] = ref.get(k, 0) + v
        assert out == ref

    def test_group_by_key(self, ctx):
        pairs = [("a", 1), ("b", 2), ("a", 3)]
        out = dict(ctx.parallelize(pairs).group_by_key().collect())
        assert sorted(out["a"]) == [1, 3]
        assert out["b"] == [2]

    def test_join(self, ctx):
        left = ctx.parallelize([("a", 1), ("b", 2), ("c", 9)])
        right = ctx.parallelize([("a", "x"), ("b", "y"), ("d", "z")])
        out = sorted(left.join(right).collect())
        assert out == [("a", (1, "x")), ("b", (2, "y"))]

    def test_key_ops_require_pairs(self, ctx):
        with pytest.raises(TypeError):
            ctx.range(4).reduce_by_key(lambda a, b: a + b).collect()

    def test_shuffle_counter(self, ctx):
        ctx.parallelize([("a", 1)] * 8).reduce_by_key(lambda a, b: a + b).collect()
        assert ctx.shuffles == 1
        assert ctx.shuffled_records >= 1


class TestCaching:
    def test_cache_avoids_recomputation(self, ctx):
        calls = []

        def spy(x):
            calls.append(x)
            return x

        rdd = ctx.range(6).map(spy).cache()
        rdd.collect()
        first = len(calls)
        rdd.collect()
        assert len(calls) == first          # second pass served from cache
        assert ctx.cache_hits >= 1

    def test_unpersist_releases_memory(self, ctx):
        rdd = ctx.range(1000).cache()
        rdd.collect()
        assert ctx._cached_names
        rdd.unpersist()
        assert not ctx._cached_names

    def test_dam_memory_keeps_cache_fast(self):
        # DAM node: everything fits DRAM-class tiers.
        dam = MiniSparkContext(n_partitions=2, memory=TieredStore.dam_node())
        rdd = dam.parallelize(list(range(10000))).cache()
        rdd.collect()
        assert dam.cached_fast_fraction() == pytest.approx(1.0)

    def test_tiny_memory_spills(self):
        tiny = MiniSparkContext(
            n_partitions=2,
            memory=TieredStore(hbm_GB=0, ddr_GB=1e-5, nvm_GB=1.0))
        rdd = tiny.parallelize(list(range(20000))).cache()
        rdd.collect()
        assert tiny.cached_fast_fraction() < 1.0

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            MiniSparkContext(n_partitions=0)


class TestTreeAggregate:
    def test_matches_fold(self, ctx):
        total = ctx.range(100).tree_aggregate(
            0, lambda acc, x: acc + x, lambda a, b: a + b)
        assert total == 4950

    def test_empty(self, ctx):
        assert ctx.parallelize([]).tree_aggregate(
            7, lambda a, x: a + x, lambda a, b: a + b) in (7, 28)
        # (zero per empty partition combined is still the zero element sum;
        # either convention is fine as long as it is deterministic)


def _blobs(n=60, seed=0):
    r = np.random.default_rng(seed)
    X = np.concatenate([r.normal(-2, 0.8, size=(n, 2)),
                        r.normal(2, 0.8, size=(n, 2))])
    y = np.array([0] * n + [1] * n)
    perm = r.permutation(len(y))
    return X[perm], y[perm]


class TestLogisticRegression:
    def test_learns_blobs(self, ctx):
        X, y = _blobs()
        rows = ctx.parallelize(list(zip(X, y)))
        model = RddLogisticRegression(n_features=2, n_iterations=40).fit(rows)
        assert model.score(X, y) > 0.95

    def test_loss_decreases(self, ctx):
        X, y = _blobs()
        rows = ctx.parallelize(list(zip(X, y)))
        model = RddLogisticRegression(n_features=2, n_iterations=30).fit(rows)
        assert model.loss_history[-1] < model.loss_history[0]

    def test_probabilities_bounded(self, ctx):
        X, y = _blobs()
        model = RddLogisticRegression(2, n_iterations=10).fit(
            ctx.parallelize(list(zip(X, y))))
        p = model.predict_proba(X)
        assert ((p >= 0) & (p <= 1)).all()

    def test_empty_rdd_rejected(self, ctx):
        with pytest.raises(ValueError):
            RddLogisticRegression(2).fit(ctx.parallelize([]))


class TestKMeans:
    def test_recovers_centroids(self, ctx):
        r = np.random.default_rng(1)
        centers = np.array([[-5.0, 0.0], [5.0, 0.0]])
        X = np.concatenate([r.normal(c, 0.5, size=(80, 2)) for c in centers])
        model = RddKMeans(k=2, seed=0).fit(ctx.parallelize(list(X)))
        found = model.centroids[np.argsort(model.centroids[:, 0])]
        np.testing.assert_allclose(found, centers, atol=0.5)

    def test_labels_partition_data(self, ctx):
        X, _ = _blobs()
        model = RddKMeans(k=2, seed=1).fit(ctx.parallelize(list(X)))
        labels = model.predict(X)
        assert set(labels.tolist()) == {0, 1}

    def test_fewer_points_than_clusters(self, ctx):
        with pytest.raises(ValueError):
            RddKMeans(k=10).fit(ctx.parallelize([np.zeros(2)]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RddKMeans(k=2).predict(np.zeros((2, 2)))


class TestTreesAndForest:
    def test_tree_fits_blobs(self):
        X, y = _blobs()
        tree = DecisionTree(max_depth=4).fit(X, y)
        assert tree.score(X, y) > 0.9

    def test_tree_depth_limits_complexity(self):
        X, y = _blobs(seed=3)
        stump = DecisionTree(max_depth=1).fit(X, y)
        deep = DecisionTree(max_depth=6).fit(X, y)
        assert deep.score(X, y) >= stump.score(X, y)

    def test_forest_beats_single_stump(self, ctx):
        r = np.random.default_rng(4)
        X = r.normal(size=(300, 4))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)   # XOR-ish
        stump = DecisionTree(max_depth=1).fit(X, y)
        forest = RandomForest(n_trees=15, max_depth=5, seed=0).fit(X, y, ctx=ctx)
        assert forest.score(X, y) > stump.score(X, y)
        assert forest.score(X, y) > 0.9

    def test_forest_without_context(self):
        X, y = _blobs(seed=5)
        forest = RandomForest(n_trees=5, max_depth=3).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_rdd_and_serial_forest_agree(self, ctx):
        X, y = _blobs(seed=6)
        serial = RandomForest(n_trees=6, max_depth=3, seed=2).fit(X, y)
        parallel = RandomForest(n_trees=6, max_depth=3, seed=2).fit(X, y, ctx=ctx)
        np.testing.assert_array_equal(serial.predict(X), parallel.predict(X))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomForest(n_trees=0)
        with pytest.raises(ValueError):
            DecisionTree(max_depth=0)
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            DecisionTree().fit(np.zeros((0, 2)), np.zeros(0, dtype=int))
