"""Batch job scripts, schedule Gantt export, bottleneck ResNet and the
multi-label BigEarthNet task (the corpus's real annotation mode)."""

import numpy as np
import pytest

from repro.core import deep_system, schedule_workload
from repro.core.batch import (
    BatchScriptError,
    parse_job_script,
    schedule_to_chrome_trace,
)
from repro.core.jobs import WorkloadClass
from repro.datasets import BigEarthNetConfig, SyntheticBigEarthNet
from repro.ml import Adam, Tensor, binary_cross_entropy_with_logits
from repro.ml.metrics import multilabel_micro_f1, subset_accuracy
from repro.ml.models import BottleneckBlock, BottleneckResNet

SCRIPT = """#!/bin/sh
#SBATCH --job-name=rs-pipeline
#SBATCH --begin=60
# stage the data, then train
#PHASE name=preprocess workload=simulation-lowscale nodes=4 work=1e15 memory=64 io=100
#PHASE name=train workload=ml-training nodes=16 work=2e18 gpu tensor-cores parallel=0.998 comm=8
"""


class TestBatchScripts:
    def test_parse_full_script(self):
        job = parse_job_script(SCRIPT)
        assert job.name == "rs-pipeline"
        assert job.arrival_time == 60.0
        assert len(job.phases) == 2
        prep, train = job.phases
        assert prep.workload is WorkloadClass.SIMULATION_LOWSCALE
        assert prep.io_bytes == pytest.approx(100 * 1024 ** 3)
        assert train.uses_gpu and train.uses_tensor_cores
        assert train.nodes == 16
        assert train.parallel_fraction == pytest.approx(0.998)

    def test_parsed_job_schedules(self):
        job = parse_job_script(SCRIPT)
        report = schedule_workload(deep_system(), [job])
        assert len(report.completion_times) == 1
        modules = [a.module_key for a in report.allocations]
        assert modules[0] == "cm"

    def test_unknown_sbatch_option_rejected(self):
        with pytest.raises(BatchScriptError):
            parse_job_script("#SBATCH --walltime=10\n#PHASE workload=ml-training work=1")

    def test_unknown_phase_option_rejected(self):
        with pytest.raises(BatchScriptError):
            parse_job_script("#PHASE workload=ml-training work=1 turbo=yes")

    def test_unknown_workload_rejected(self):
        with pytest.raises(BatchScriptError) as err:
            parse_job_script("#PHASE workload=mining work=1")
        assert "mining" in str(err.value)

    def test_missing_work_rejected(self):
        with pytest.raises(BatchScriptError):
            parse_job_script("#PHASE workload=ml-training nodes=2")

    def test_empty_script_rejected(self):
        with pytest.raises(BatchScriptError):
            parse_job_script("# nothing here\n")

    def test_shell_commands_rejected(self):
        with pytest.raises(BatchScriptError):
            parse_job_script("srun python train.py")

    def test_comments_and_shebang_ignored(self):
        job = parse_job_script(
            "#!/bin/bash\n# hi\n#PHASE workload=ml-inference work=5e14 gpu\n")
        assert job.phases[0].workload is WorkloadClass.ML_INFERENCE


class TestGanttExport:
    def test_chrome_trace_structure(self):
        job = parse_job_script(SCRIPT)
        report = schedule_workload(deep_system(), [job])
        trace = schedule_to_chrome_trace(report)
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        lanes = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(spans) == len(report.allocations)
        assert {l["args"]["name"] for l in lanes} == \
            {a.module_key for a in report.allocations}
        for span in spans:
            assert span["dur"] > 0

    def test_trace_json_serialisable(self):
        import json

        job = parse_job_script(SCRIPT)
        report = schedule_workload(deep_system(), [job])
        json.dumps(schedule_to_chrome_trace(report))


class TestBottleneckResNet:
    def test_block_expansion(self):
        block = BottleneckBlock(8, width=4)
        assert block.out_channels == 16
        out = block(Tensor(np.random.default_rng(0).normal(size=(2, 8, 8, 8))))
        assert out.shape == (2, 16, 8, 8)

    def test_resnet50_layout_constructible(self):
        # The true (3, 4, 6, 3) layout at tiny width: 16 bottlenecks.
        net = BottleneckResNet(3, 10, blocks_per_stage=(3, 4, 6, 3),
                               base_width=2)
        assert len(net.stages) == 16
        out = net(Tensor(np.random.default_rng(0).normal(size=(1, 3, 16, 16))))
        assert out.shape == (1, 10)

    def test_gradients_reach_all_parameters(self):
        from repro.ml import cross_entropy

        net = BottleneckResNet(4, 3, blocks_per_stage=(1, 1), base_width=4)
        loss = cross_entropy(
            net(Tensor(np.random.default_rng(1).normal(size=(2, 4, 8, 8)))),
            np.array([0, 2]))
        net.zero_grad()
        loss.backward()
        for name, p in net.named_parameters():
            assert p.grad is not None, name


class TestMultiLabelLandCover:
    """BigEarthNet's actual task: multi-label CORINE annotation."""

    @pytest.fixture(scope="class")
    def trained(self):
        X, Y = SyntheticBigEarthNet(BigEarthNetConfig(
            n_samples=160, patch_size=8, n_classes=4, multi_label=True,
            max_labels=2, noise_sigma=0.01, seed=1)).generate_multilabel()
        net = BottleneckResNet(in_channels=12, n_classes=4,
                               blocks_per_stage=(1, 1), base_width=6)
        opt = Adam(net.parameters(), lr=3e-3)
        rng = np.random.default_rng(0)
        for _ in range(60):
            idx = rng.permutation(len(X))[:64]
            loss = binary_cross_entropy_with_logits(
                net(Tensor(X[idx])), Y[idx])
            net.zero_grad()
            loss.backward()
            opt.step()
        return net, X, Y

    def test_micro_f1_above_threshold(self, trained):
        net, X, Y = trained
        probs = net.predict_proba_multilabel(X)
        assert multilabel_micro_f1(probs, Y) > 0.7

    def test_beats_always_on_baseline(self, trained):
        net, X, Y = trained
        probs = net.predict_proba_multilabel(X)
        always_on = np.ones_like(Y)
        assert multilabel_micro_f1(probs, Y) > \
            multilabel_micro_f1(always_on, Y)

    def test_probabilities_in_unit_interval(self, trained):
        net, X, _ = trained
        probs = net.predict_proba_multilabel(X[:8])
        assert ((probs >= 0) & (probs <= 1)).all()

    def test_subset_accuracy_above_chance(self, trained):
        net, X, Y = trained
        probs = net.predict_proba_multilabel(X)
        # Chance subset accuracy for 4 independent labels ~ (1/2)^4.
        assert subset_accuracy(probs, Y) > 0.2
