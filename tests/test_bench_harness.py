"""Property tests for the perf-regression harness.

The two properties the harness exists to provide:

* **determinism** — same (code, seed, quick, env) ⇒ byte-identical
  ``BENCH_<area>.json`` artifacts, so CI can diff them textually,
* **regression gating** — ``--compare`` fails on a budgeted metric that
  regressed beyond tolerance (asserted here by doctoring a baseline to
  make the current run look 2x slower) and passes on identical runs.
"""

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.runner import (
    compare_docs,
    compare_timing,
    load_artifact_dir,
    run_bench,
    write_artifacts,
)
from repro.bench.schema import (
    CORE_AREAS,
    SCHEMA_ID,
    BenchSchemaError,
    dumps_canonical,
    env_fingerprint,
    loads_validated,
    validate_artifact,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def quick_run():
    """One deterministic quick run over every registered area."""
    return run_bench(quick=True, seed=0, wall=False)


class TestDeterminism:
    def test_core_areas_all_emitted(self, quick_run):
        assert set(CORE_AREAS) <= set(quick_run)

    def test_same_seed_runs_are_byte_identical(self, quick_run, tmp_path):
        rerun = run_bench(quick=True, seed=0, wall=False)
        for area, arts in quick_run.items():
            assert dumps_canonical(arts.doc) == \
                dumps_canonical(rerun[area].doc), f"area {area} drifted"

    def test_different_seed_changes_workload_digests(self, quick_run):
        other = run_bench(areas=["events"], quick=True, seed=1, wall=False)
        a = quick_run["events"].doc["cases"]["des_event_throughput"]
        b = other["events"].doc["cases"]["des_event_throughput"]
        assert a["digests"] != b["digests"]

    def test_written_artifacts_roundtrip_validated(self, quick_run,
                                                   tmp_path):
        paths = write_artifacts(quick_run, tmp_path)
        assert {p.name for p in paths} == \
            {f"BENCH_{a}.json" for a in quick_run}
        docs = load_artifact_dir(tmp_path)
        assert set(docs) == set(quick_run)
        for area, doc in docs.items():
            assert doc == json.loads(dumps_canonical(quick_run[area].doc))


def _docs(quick_run):
    return {area: arts.doc for area, arts in quick_run.items()}


class TestCompare:
    def test_identical_runs_pass(self, quick_run):
        report = compare_docs(_docs(quick_run), _docs(quick_run))
        assert report.ok
        assert not report.improvements

    def test_injected_2x_slowdown_flagged(self, quick_run):
        # Doctor the *baseline* so every lower-is-better budgeted metric
        # looks like the current run regressed 2x against it (and every
        # higher-is-better one like it halved).
        current = _docs(quick_run)
        baseline = copy.deepcopy(current)
        doctored = 0
        for doc in baseline.values():
            for case in doc["cases"].values():
                for metric, budget in case["budgets"].items():
                    value = case["metrics"][metric]
                    if value == 0:
                        continue
                    if budget["direction"] == "lower":
                        case["metrics"][metric] = value / 2.0
                    else:
                        case["metrics"][metric] = value * 2.0
                    doctored += 1
        assert doctored > 0
        report = compare_docs(current, baseline)
        assert not report.ok
        assert len(report.regressions) == doctored
        assert "REGRESSIONS" in report.to_text()

    def test_regression_within_tolerance_passes(self, quick_run):
        current = _docs(quick_run)
        baseline = copy.deepcopy(current)
        case = baseline["mpi"]["cases"]["p2p_message_rate"]
        tol = case["budgets"]["sim_time_s"]["tolerance"]
        case["metrics"]["sim_time_s"] /= (1.0 + tol * 0.5)
        assert compare_docs(current, baseline).ok

    def test_missing_area_is_a_regression(self, quick_run):
        current = _docs(quick_run)
        baseline = dict(current)
        current = {a: d for a, d in current.items() if a != "events"}
        report = compare_docs(current, baseline)
        assert not report.ok
        assert any(d.area == "events" for d in report.regressions)

    def test_digest_drift_is_a_note_not_a_failure(self, quick_run):
        current = _docs(quick_run)
        baseline = copy.deepcopy(current)
        case = baseline["training"]["cases"]["fused_allreduce_step"]
        case["digests"]["loss_trajectory"] = "0" * 16
        report = compare_docs(current, baseline)
        assert report.ok
        assert any("digest:loss_trajectory" in n for n in report.notes)

    def test_compare_timing_flags_wall_regression(self):
        base = {"mpi": {"cases": {"c": {"k": {"best_s": 1.0}}}}}
        fast = {"mpi": {"cases": {"c": {"k": {"best_s": 1.2}}}}}
        slow = {"mpi": {"cases": {"c": {"k": {"best_s": 2.0}}}}}
        assert compare_timing(fast, base, tolerance=0.5).ok
        assert not compare_timing(slow, base, tolerance=0.5).ok


class TestSchema:
    def _valid_doc(self):
        return {
            "schema": SCHEMA_ID, "area": "mpi", "mode": "quick", "seed": 0,
            "env": env_fingerprint(),
            "cases": {"c": {"metrics": {"m": 1.0},
                            "digests": {"d": "abc"},
                            "budgets": {"m": {"direction": "lower",
                                              "tolerance": 0.1}}}},
        }

    def test_valid_doc_roundtrips(self):
        doc = self._valid_doc()
        validate_artifact(doc)
        assert loads_validated(dumps_canonical(doc)) == doc

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("schema"),
        lambda d: d.update(schema="other/9"),
        lambda d: d.update(mode="fast"),
        lambda d: d.update(seed="0"),
        lambda d: d.update(seed=True),
        lambda d: d.pop("env"),
        lambda d: d["env"].pop("numpy"),
        lambda d: d.update(cases={}),
        lambda d: d["cases"]["c"]["metrics"].update(m="fast"),
        lambda d: d["cases"]["c"]["metrics"].update(m=True),
        lambda d: d["cases"]["c"]["digests"].update(d=5),
        lambda d: d["cases"]["c"]["budgets"]["m"].update(direction="up"),
        lambda d: d["cases"]["c"]["budgets"]["m"].update(tolerance=-1),
        lambda d: d["cases"]["c"]["budgets"].update(
            ghost={"direction": "lower", "tolerance": 0.1}),
    ])
    def test_invalid_docs_rejected(self, mutate):
        doc = self._valid_doc()
        mutate(doc)
        with pytest.raises(BenchSchemaError):
            validate_artifact(doc)

    def test_non_json_rejected(self):
        with pytest.raises(BenchSchemaError):
            loads_validated("{not json")

    def test_load_artifact_dir_requires_artifacts(self, tmp_path):
        with pytest.raises(BenchSchemaError):
            load_artifact_dir(tmp_path / "missing")
        with pytest.raises(BenchSchemaError):
            load_artifact_dir(tmp_path)


class TestCommittedBaseline:
    """The repo's committed baseline must stay loadable and current-shaped."""

    def test_baseline_validates(self):
        docs = load_artifact_dir(REPO_ROOT / "benchmarks" / "baselines")
        assert set(CORE_AREAS) <= set(docs)

    def test_current_code_matches_committed_baseline(self, quick_run):
        docs = load_artifact_dir(REPO_ROOT / "benchmarks" / "baselines")
        report = compare_docs(_docs(quick_run), docs)
        assert report.ok, report.to_text()


class TestCli:
    def test_bench_compare_exit_codes(self, tmp_path):
        """End-to-end: emit, compare-clean (0), compare-doctored (1)."""
        out = tmp_path / "out"
        env_cmd = [sys.executable, "-m", "repro.cli", "bench", "--quick",
                   "--areas", "events", "--no-wall"]
        run = subprocess.run(
            env_cmd + ["--out", str(out)], cwd=REPO_ROOT, text=True,
            capture_output=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert run.returncode == 0, run.stderr
        assert (out / "BENCH_events.json").exists()

        clean = subprocess.run(
            env_cmd + ["--out", str(tmp_path / "out2"),
                       "--compare", str(out)],
            cwd=REPO_ROOT, text=True, capture_output=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert clean.returncode == 0, clean.stderr

        doc = loads_validated((out / "BENCH_events.json").read_text())
        case = doc["cases"]["des_event_throughput"]
        case["metrics"]["sim_rate_events_per_s"] *= 4.0   # fake: was faster
        (out / "BENCH_events.json").write_text(dumps_canonical(doc))
        doctored = subprocess.run(
            env_cmd + ["--out", str(tmp_path / "out3"),
                       "--compare", str(out)],
            cwd=REPO_ROOT, text=True, capture_output=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"})
        assert doctored.returncode == 1
        assert "REGRESSIONS" in doctored.stdout
