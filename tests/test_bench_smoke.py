"""Smoke coverage for the ``benchmarks/`` suite's common-flag contract.

Every ``bench_*.py`` module must be a standalone script: importable with
the benchmarks directory on ``sys.path``, exposing a ``main(argv)`` that
understands the common ``--quick``/``--seed`` flags from
``benchmarks/_common.py``.  The slow test at the bottom actually runs the
whole suite once in quick mode — the same invocation CI's bench job uses.
"""

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"
BENCH_MODULES = sorted(p.name for p in BENCH_DIR.glob("bench_*.py"))


def _load(name: str):
    """Import a benchmark module the way its ``main`` runs: with the
    benchmarks dir (for ``conftest``/``_common``) and ``src`` importable."""
    for entry in (str(BENCH_DIR), str(REPO_ROOT / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    spec = importlib.util.spec_from_file_location(
        name.removesuffix(".py"), BENCH_DIR / name)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_suite_is_nonempty():
    assert len(BENCH_MODULES) >= 15


@pytest.mark.parametrize("name", BENCH_MODULES)
def test_every_bench_module_has_standalone_main(name):
    module = _load(name)
    assert callable(getattr(module, "main", None)), \
        f"{name} lacks a main() entry point"


class TestCommonFlags:
    def test_parse_defaults(self):
        common = _load("_common.py")
        ns = common.parse_bench_args([])
        assert (ns.quick, ns.seed) == (False, 0)

    def test_parse_quick_and_seed(self):
        common = _load("_common.py")
        ns = common.parse_bench_args(["--quick", "--seed", "7"])
        assert (ns.quick, ns.seed) == (True, 7)

    def test_env_export_roundtrip(self, monkeypatch):
        common = _load("_common.py")
        monkeypatch.delenv(common.QUICK_ENV, raising=False)
        monkeypatch.delenv(common.SEED_ENV, raising=False)
        assert not common.bench_quick()
        assert common.bench_seed() == 0
        common.export_bench_env(True, 3)
        try:
            assert common.bench_quick()
            assert common.bench_seed() == 3
        finally:
            monkeypatch.delenv(common.QUICK_ENV, raising=False)
            monkeypatch.delenv(common.SEED_ENV, raising=False)


@pytest.mark.slow
def test_quick_suite_passes_end_to_end():
    """The CI bench job's exact smoke invocation: the full benchmark
    suite, quick mode, seed 0, wall-time calibration disabled."""
    env = dict(os.environ)
    env.update({"PYTHONPATH": "src",
                "REPRO_BENCH_QUICK": "1",
                "REPRO_BENCH_SEED": "0"})
    run = subprocess.run(
        [sys.executable, "-m", "pytest", "benchmarks", "-q",
         "--benchmark-disable", "-p", "no:cacheprovider"],
        cwd=REPO_ROOT, env=env, text=True, capture_output=True,
        timeout=600)
    assert run.returncode == 0, run.stdout[-4000:] + run.stderr[-2000:]
