"""Unit tests for the bench timing engine, driven by a fake clock.

Nothing here touches wall time: every measurement goes through
:class:`repro.bench.timing.FakeClock`, so the interleaving, warmup,
min-of-K and outlier-rejection policies are asserted deterministically.
"""

import pytest

from repro.bench.timing import (
    FULL_POLICY,
    QUICK_POLICY,
    FakeClock,
    TimingError,
    TimingPolicy,
    measure_interleaved,
    reject_outliers,
    summarize,
)

#: No gc.collect between timed calls — irrelevant under a fake clock and
#: it keeps the suite fast.
_POLICY = TimingPolicy(rounds=3, warmup=1, collect_gc=False)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        TimingPolicy()
        assert QUICK_POLICY.rounds < FULL_POLICY.rounds

    def test_zero_rounds_rejected(self):
        with pytest.raises(TimingError):
            TimingPolicy(rounds=0)

    def test_negative_warmup_rejected(self):
        with pytest.raises(TimingError):
            TimingPolicy(warmup=-1)

    def test_outlier_factor_must_exceed_one(self):
        with pytest.raises(TimingError):
            TimingPolicy(outlier_factor=1.0)


class TestFakeClock:
    def test_each_timed_region_consumes_one_script_entry(self):
        clock = FakeClock(script=[3.0, 5.0])
        t0 = clock()
        assert clock() - t0 == 3.0
        t0 = clock()
        assert clock() - t0 == 5.0
        t0 = clock()        # script cycles
        assert clock() - t0 == 3.0

    def test_skew_lands_between_timed_regions(self):
        clock = FakeClock(script=[1.0], skew=100.0)
        t0 = clock()
        assert clock() - t0 == 1.0      # skew never inside a region


class TestInterleaving:
    def test_candidates_alternate_every_round(self):
        calls = []
        measure_interleaved(
            {"a": lambda: calls.append("a"), "b": lambda: calls.append("b")},
            policy=TimingPolicy(rounds=2, warmup=1, collect_gc=False),
            clock=FakeClock(script=[1.0]))
        # 3 total rounds (1 warmup + 2 recorded), interleaved — never
        # a-a-a then b-b-b.
        assert calls == ["a", "b", "a", "b", "a", "b"]

    def test_warmup_rounds_are_discarded(self):
        # First round observes 100s for both candidates; recorded rounds
        # observe 1s.  With warmup=1 the 100s never reach the samples.
        clock = FakeClock(script=[100.0, 100.0, 1.0, 1.0, 1.0, 1.0,
                                  1.0, 1.0])
        results = measure_interleaved(
            {"a": lambda: None, "b": lambda: None},
            policy=TimingPolicy(rounds=3, warmup=1, collect_gc=False),
            clock=clock)
        assert results["a"].samples == (1.0, 1.0, 1.0)
        assert results["b"].samples == (1.0, 1.0, 1.0)

    def test_min_of_k_is_the_headline(self):
        clock = FakeClock(script=[5.0, 2.0, 9.0])
        results = measure_interleaved(
            {"x": lambda: None},
            policy=TimingPolicy(rounds=3, warmup=0, collect_gc=False),
            clock=clock)
        r = results["x"]
        assert r.best_s == 2.0
        assert r.samples == (5.0, 2.0, 9.0)
        assert r.ops_per_s == pytest.approx(0.5)

    def test_untimed_skew_never_contaminates_samples(self):
        clock = FakeClock(script=[1.0], skew=50.0)
        results = measure_interleaved(
            {"x": lambda: None}, policy=_POLICY, clock=clock)
        assert results["x"].best_s == 1.0
        assert results["x"].samples == (1.0, 1.0, 1.0)

    def test_empty_candidates_rejected(self):
        with pytest.raises(TimingError):
            measure_interleaved({}, policy=_POLICY, clock=FakeClock([1.0]))


class TestOutlierRejection:
    def test_contaminated_sample_dropped_from_secondary_stats(self):
        kept, dropped = reject_outliers([1.0, 1.1, 1.2, 100.0], factor=4.0)
        assert dropped == 1
        assert 100.0 not in kept

    def test_minimum_survives_rejection(self):
        # min <= median < cutoff always, so the headline can't be dropped.
        kept, _ = reject_outliers([0.001, 1.0, 1.0, 1.0, 50.0], factor=4.0)
        assert 0.001 in kept

    def test_summarize_reports_drop_count_but_keeps_best(self):
        r = summarize("x", [1.0, 1.1, 1.2, 100.0],
                      TimingPolicy(rounds=4, outlier_factor=4.0))
        assert r.best_s == 1.0
        assert r.outliers_dropped == 1
        assert r.median_s < 2.0
        assert r.mean_s < 2.0
        assert r.samples == (1.0, 1.1, 1.2, 100.0)  # raw samples retained

    def test_summarize_requires_samples(self):
        with pytest.raises(TimingError):
            summarize("x", [], _POLICY)


class TestScaling:
    def test_scaled_divides_by_op_count(self):
        r = summarize("x", [2.0], TimingPolicy(rounds=1))
        assert r.scaled(1000) == pytest.approx(0.002)

    def test_scaled_rejects_nonpositive_ops(self):
        r = summarize("x", [2.0], TimingPolicy(rounds=1))
        with pytest.raises(TimingError):
            r.scaled(0)
