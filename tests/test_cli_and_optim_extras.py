"""The CLI front end, cosine LR decay and gradient clipping."""

import numpy as np
import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.ml import CosineDecaySchedule, SGD, clip_grad_norm
from repro.ml.layers import Parameter


class TestCli:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "DEEP" in out and "JUWELS" in out
        assert "qubits" in out

    def test_schedule(self, capsys):
        assert main(["schedule", "--jobs", "4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_schedule_with_placements(self, capsys):
        assert main(["schedule", "--jobs", "3", "--placements"]) == 0
        assert "placements:" in capsys.readouterr().out

    def test_schedule_on_juwels(self, capsys):
        assert main(["schedule", "--system", "juwels", "--jobs", "3"]) == 0
        assert "JUWELS" in capsys.readouterr().out

    def test_scaling(self, capsys):
        assert main(["scaling", "--gpus", "1", "8", "96"]) == 0
        out = capsys.readouterr().out
        assert "96" in out and "speedup" in out

    def test_scaling_tuned(self, capsys):
        main(["scaling", "--gpus", "128"])
        naive = capsys.readouterr().out
        main(["scaling", "--gpus", "128", "--tuned"])
        tuned = capsys.readouterr().out
        naive_speedup = float(naive.splitlines()[-1].split()[2])
        tuned_speedup = float(tuned.splitlines()[-1].split()[2])
        assert tuned_speedup > naive_speedup

    def test_submit(self, tmp_path, capsys):
        script = tmp_path / "job.sh"
        script.write_text(
            "#SBATCH --job-name=cli-test\n"
            "#PHASE name=train workload=ml-training nodes=4 work=1e16 gpu\n")
        assert main(["submit", str(script)]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out

    def test_experiments_lists_all(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id, _, bench in EXPERIMENTS:
            assert exp_id in out
            assert bench in out

    def test_unknown_system_exits(self):
        with pytest.raises(SystemExit):
            main(["schedule", "--system", "summit"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestClipGradNorm:
    def test_large_gradients_scaled_to_max(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0)

    def test_small_gradients_untouched(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.1, 0.0, 0.0])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_array_equal(p.grad, [0.1, 0.0, 0.0])

    def test_global_norm_across_params(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = clip_grad_norm([a, b], max_norm=2.5)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(a.grad[0] ** 2 + b.grad[0] ** 2)
        assert total == pytest.approx(2.5)

    def test_none_grads_skipped(self):
        a = Parameter(np.zeros(1))
        b = Parameter(np.zeros(1))
        b.grad = np.array([1.0])
        assert clip_grad_norm([a, b], max_norm=10.0) == pytest.approx(1.0)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)


class TestCosineDecay:
    def _opt(self):
        return SGD([Parameter(np.zeros(1))], lr=1.0)

    def test_warmup_then_decay_to_final(self):
        opt = self._opt()
        sched = CosineDecaySchedule(opt, peak_lr=1.0, total_steps=100,
                                    warmup_steps=10, final_lr=0.1)
        lrs = [sched.step() for _ in range(100)]
        assert lrs[7] < lrs[8]                       # still warming up
        assert max(lrs) == pytest.approx(1.0, abs=1e-6)
        assert lrs[-1] == pytest.approx(0.1, abs=1e-6)

    def test_monotone_decay_after_peak(self):
        opt = self._opt()
        sched = CosineDecaySchedule(opt, peak_lr=1.0, total_steps=50,
                                    warmup_steps=5)
        lrs = [sched.step() for _ in range(50)]
        post_peak = lrs[5:]
        assert all(a >= b - 1e-12 for a, b in zip(post_peak, post_peak[1:]))

    def test_half_way_is_half_amplitude(self):
        opt = self._opt()
        sched = CosineDecaySchedule(opt, peak_lr=2.0, total_steps=100,
                                    warmup_steps=0, final_lr=0.0)
        for _ in range(50):
            sched.step()
        assert opt.lr == pytest.approx(1.0, rel=0.05)

    def test_lr_floor_after_total_steps(self):
        opt = self._opt()
        sched = CosineDecaySchedule(opt, peak_lr=1.0, total_steps=10,
                                    final_lr=0.25)
        for _ in range(30):
            sched.step()
        assert opt.lr == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineDecaySchedule(self._opt(), peak_lr=0.0, total_steps=10)
        with pytest.raises(ValueError):
            CosineDecaySchedule(self._opt(), peak_lr=1.0, total_steps=0)
        with pytest.raises(ValueError):
            CosineDecaySchedule(self._opt(), peak_lr=1.0, total_steps=5,
                                warmup_steps=9)
