"""Energy model: load-aware power draw and schedule-level accounting."""

import pytest

from repro.core import (
    DEEP_CM_NODE,
    DEEP_DAM_NODE,
    JUWELS_BOOSTER_NODE,
    EnergyAccountant,
    JobPhase,
    PowerModel,
    WorkloadClass,
)


def _phase(uses_gpu=False):
    return JobPhase(name="p", workload=WorkloadClass.ML_TRAINING,
                    work_flops=1e15, uses_gpu=uses_gpu)


class TestPowerModel:
    def test_idle_below_load(self):
        pm = PowerModel(DEEP_CM_NODE)
        assert pm.idle_watts < pm.load_watts(_phase())

    def test_gpu_phase_draws_more(self):
        pm = PowerModel(JUWELS_BOOSTER_NODE)
        assert pm.load_watts(_phase(uses_gpu=True)) > \
            pm.load_watts(_phase(uses_gpu=False)) + 1000

    def test_unused_gpu_leaks_10pct(self):
        pm = PowerModel(JUWELS_BOOSTER_NODE)
        gpu_tdp = sum(g.tdp_watts for g in JUWELS_BOOSTER_NODE.gpus)
        cpu_load = (JUWELS_BOOSTER_NODE.idle_watts
                    + JUWELS_BOOSTER_NODE.cpu.tdp_watts * 2)
        assert pm.load_watts(_phase(uses_gpu=False)) == pytest.approx(
            cpu_load + 0.10 * gpu_tdp)

    def test_none_phase_is_idle(self):
        pm = PowerModel(DEEP_DAM_NODE)
        assert pm.load_watts(None) == pm.idle_watts

    def test_energy_scales_with_time(self):
        pm = PowerModel(DEEP_CM_NODE)
        assert pm.energy_joules(_phase(), 10.0) == \
            pytest.approx(10 * pm.load_watts(_phase()))

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            PowerModel(DEEP_CM_NODE).energy_joules(_phase(), -1.0)


class TestAccountant:
    def test_charges_accumulate_per_module(self):
        acc = EnergyAccountant()
        acc.charge_phase("cm", DEEP_CM_NODE, _phase(), n_nodes=4, seconds=100)
        acc.charge_phase("cm", DEEP_CM_NODE, _phase(), n_nodes=2, seconds=50)
        acc.charge_idle("cm", DEEP_CM_NODE, node_seconds=1000)
        per = acc.per_module()
        assert per["cm"]["busy_joules"] > 0
        assert per["cm"]["idle_joules"] == pytest.approx(
            DEEP_CM_NODE.idle_watts * 1000)

    def test_totals(self):
        acc = EnergyAccountant()
        acc.charge_phase("a", DEEP_CM_NODE, _phase(), 1, 10)
        acc.charge_idle("b", DEEP_CM_NODE, 10)
        assert acc.total_joules == pytest.approx(
            acc.busy_joules + acc.idle_joules)
        assert acc.total_kwh == pytest.approx(acc.total_joules / 3.6e6)

    def test_busy_energy_proportional_to_nodes(self):
        acc = EnergyAccountant()
        j1 = acc.charge_phase("m", DEEP_CM_NODE, _phase(), 1, 60)
        j4 = acc.charge_phase("m", DEEP_CM_NODE, _phase(), 4, 60)
        assert j4 == pytest.approx(4 * j1)
