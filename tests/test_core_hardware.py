"""Hardware catalogue tests, including the Table I encoding."""

import pytest

from repro.core import (
    DEEP_CM_NODE,
    DEEP_DAM_NODE,
    DEEP_ESB_NODE,
    JUWELS_BOOSTER_NODE,
    JUWELS_CLUSTER_GPU_NODE,
    JUWELS_CLUSTER_NODE,
    KNL_MANYCORE,
    NVIDIA_A100,
    NVIDIA_V100,
    STRATIX10,
    XEON_CASCADE_LAKE,
    XEON_PLATINUM_8168,
    CpuSpec,
    GpuSpec,
    MemorySpec,
    NodeSpec,
    StorageSpec,
)


class TestTableI:
    """Table I of the paper, verbatim: the DEEP DAM node."""

    def test_two_cascade_lake_sockets(self):
        assert DEEP_DAM_NODE.cpu is XEON_CASCADE_LAKE
        assert DEEP_DAM_NODE.cpu_sockets == 2
        assert "Cascade Lake" in DEEP_DAM_NODE.cpu.name

    def test_one_v100_gpu(self):
        assert DEEP_DAM_NODE.gpu_count == 1
        assert DEEP_DAM_NODE.gpus[0] is NVIDIA_V100

    def test_one_stratix10_fpga_pcie3(self):
        assert len(DEEP_DAM_NODE.fpgas) == 1
        assert DEEP_DAM_NODE.fpgas[0] is STRATIX10
        assert STRATIX10.pcie_gen == 3

    def test_memory_384_ddr_32_fpga_32_hbm(self):
        assert DEEP_DAM_NODE.memory.ddr_GB == 384.0
        assert DEEP_DAM_NODE.memory.hbm_GB == 32.0       # GPU HBM2
        assert STRATIX10.memory_GB == 32.0               # FPGA DDR4

    def test_storage_2x_1p5_TB_nvme(self):
        assert DEEP_DAM_NODE.storage.devices == 2
        assert DEEP_DAM_NODE.storage.capacity_TB_each == 1.5
        assert DEEP_DAM_NODE.storage.capacity_TB == 3.0

    def test_nvm_2tb_per_node(self):
        assert DEEP_DAM_NODE.memory.nvm_GB == 2048.0


class TestCpuSpec:
    def test_peak_flops(self):
        cpu = CpuSpec(name="x", cores=10, clock_ghz=2.0, flops_per_cycle=16)
        assert cpu.peak_flops == 10 * 2.0e9 * 16

    def test_scalar_throughput(self):
        assert XEON_PLATINUM_8168.scalar_ops_per_s == pytest.approx(
            24 * 2.7e9 * XEON_PLATINUM_8168.scalar_ipc)

    def test_manycore_weak_single_thread(self):
        assert KNL_MANYCORE.single_thread_ops_per_s < \
            XEON_PLATINUM_8168.single_thread_ops_per_s / 5

    def test_manycore_strong_vector_throughput(self):
        assert KNL_MANYCORE.peak_flops > XEON_CASCADE_LAKE.peak_flops


class TestGpuSpec:
    def test_a100_tensor_cores_2p5x_v100(self):
        ratio = NVIDIA_A100.tensor_tflops / NVIDIA_V100.tensor_tflops
        assert ratio == pytest.approx(2.5, rel=0.01)

    def test_a100_memory_bandwidth_higher(self):
        assert NVIDIA_A100.memory_bw_GBps > NVIDIA_V100.memory_bw_GBps

    def test_tensor_flops_dwarf_fp32(self):
        for gpu in (NVIDIA_A100, NVIDIA_V100):
            assert gpu.tensor_flops > 5 * gpu.peak_flops


class TestNodeSpec:
    def test_cpu_cores_counts_sockets(self):
        assert JUWELS_CLUSTER_NODE.cpu_cores == 48

    def test_gpu_aggregates(self):
        assert JUWELS_BOOSTER_NODE.gpu_count == 4
        assert JUWELS_BOOSTER_NODE.gpu_tensor_flops == 4 * NVIDIA_A100.tensor_flops

    def test_peak_watts_includes_all_components(self):
        node = DEEP_DAM_NODE
        expected = (node.idle_watts
                    + 2 * XEON_CASCADE_LAKE.tdp_watts
                    + NVIDIA_V100.tdp_watts
                    + STRATIX10.tdp_watts)
        assert node.peak_watts == pytest.approx(expected)

    def test_booster_node_outpowers_cluster_node(self):
        assert JUWELS_BOOSTER_NODE.peak_flops > 15 * JUWELS_CLUSTER_NODE.peak_flops

    def test_with_name(self):
        renamed = DEEP_CM_NODE.with_name("custom")
        assert renamed.name == "custom"
        assert renamed.cpu is DEEP_CM_NODE.cpu

    def test_esb_node_is_manycore(self):
        assert DEEP_ESB_NODE.cpu is KNL_MANYCORE
        assert DEEP_ESB_NODE.gpu_count == 1


class TestMemoryAndStorage:
    def test_total_memory(self):
        mem = MemorySpec(ddr_GB=100.0, hbm_GB=20.0, nvm_GB=1000.0)
        assert mem.total_GB == 1120.0

    def test_storage_capacity(self):
        s = StorageSpec(devices=4, capacity_TB_each=2.0)
        assert s.capacity_TB == 8.0

    def test_cluster_gpu_node_has_4_v100(self):
        assert JUWELS_CLUSTER_GPU_NODE.gpu_count == 4
        assert all(g is NVIDIA_V100 for g in JUWELS_CLUSTER_GPU_NODE.gpus)
