"""The workload runtime model behind Fig. 2's placement argument."""

import numpy as np
import pytest

from repro.core import (
    ClusterModule,
    BoosterModule,
    DataAnalyticsModule,
    DEEP_CM_NODE,
    DEEP_DAM_NODE,
    DEEP_ESB_NODE,
    Job,
    JobPhase,
    WorkloadClass,
    synthetic_workload_mix,
)
from repro.core.jobs import (
    FS_SPILL_PENALTY,
    NVM_SPILL_PENALTY,
    memory_penalty,
    node_throughput,
    phase_runtime,
)

CM = ClusterModule("cm", DEEP_CM_NODE, 16)
ESB = BoosterModule("esb", DEEP_ESB_NODE, 16)
DAM = DataAnalyticsModule("dam", DEEP_DAM_NODE, 16)


def _phase(**kw):
    defaults = dict(name="p", workload=WorkloadClass.SIMULATION_HIGHSCALE,
                    work_flops=1e15, nodes=4)
    defaults.update(kw)
    return JobPhase(**defaults)


class TestValidation:
    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            _phase(work_flops=-1)

    def test_bad_parallel_fraction(self):
        with pytest.raises(ValueError):
            _phase(parallel_fraction=1.5)

    def test_bad_efficiency(self):
        with pytest.raises(ValueError):
            _phase(efficiency=0.0)

    def test_job_needs_phases(self):
        with pytest.raises(ValueError):
            Job(name="j", phases=[])

    def test_job_total_work(self):
        job = Job(name="j", phases=[_phase(), _phase(work_flops=2e15)])
        assert job.total_work_flops == 3e15


class TestThroughputMatching:
    def test_gpu_phase_prefers_gpu_module(self):
        phase = _phase(uses_gpu=True)
        assert node_throughput(phase, ESB) > 5 * node_throughput(phase, CM)

    def test_tensor_cores_boost_ml_training(self):
        plain = _phase(workload=WorkloadClass.ML_TRAINING, uses_gpu=True)
        tensor = _phase(workload=WorkloadClass.ML_TRAINING, uses_gpu=True,
                        uses_tensor_cores=True)
        assert node_throughput(tensor, ESB) > 5 * node_throughput(plain, ESB)

    def test_lowscale_prefers_fat_cores(self):
        phase = _phase(workload=WorkloadClass.SIMULATION_LOWSCALE)
        assert node_throughput(phase, CM) > 2 * node_throughput(phase, ESB)

    def test_gpu_phase_on_cpu_module_falls_back(self):
        phase = _phase(uses_gpu=True)
        assert node_throughput(phase, CM) == pytest.approx(
            DEEP_CM_NODE.cpu_peak_flops * phase.efficiency)


class TestMemoryPenalty:
    def test_fits_in_dram(self):
        assert memory_penalty(_phase(memory_GB_per_node=64), CM) == 1.0

    def test_spills_to_nvm_on_dam(self):
        phase = _phase(memory_GB_per_node=800)
        assert memory_penalty(phase, DAM) == NVM_SPILL_PENALTY

    def test_spills_to_fs_without_nvm(self):
        phase = _phase(memory_GB_per_node=800)
        assert memory_penalty(phase, CM) == FS_SPILL_PENALTY

    def test_dam_absorbs_analytics_working_sets(self):
        phase = _phase(workload=WorkloadClass.DATA_ANALYTICS,
                       memory_GB_per_node=400)
        assert memory_penalty(phase, DAM) == 1.0
        assert memory_penalty(phase, CM) == FS_SPILL_PENALTY


class TestPhaseRuntime:
    def test_more_nodes_faster_until_amdahl(self):
        phase = _phase(parallel_fraction=0.99)
        t1 = phase_runtime(phase, CM, 1)
        t8 = phase_runtime(phase, CM, 8)
        assert t8 < t1
        # Amdahl bound: speedup <= 1 / (1 - f)
        assert t1 / t8 <= 1.0 / (1.0 - 0.99) + 1e-9

    def test_serial_fraction_floors_runtime(self):
        phase = _phase(parallel_fraction=0.5)
        t_inf = phase_runtime(phase, CM, 16)
        t_1 = phase_runtime(phase, CM, 1)
        assert t_inf > t_1 * 0.5 * 0.9

    def test_io_adds_time(self):
        base = phase_runtime(_phase(), CM, 4)
        with_io = phase_runtime(_phase(io_bytes=1e12), CM, 4)
        assert with_io > base

    def test_comm_adds_time_on_multinode(self):
        base = phase_runtime(_phase(), CM, 4)
        comm = phase_runtime(_phase(comm_bytes_per_node=1e10), CM, 4)
        assert comm > base

    def test_single_node_has_no_comm_cost(self):
        a = phase_runtime(_phase(comm_bytes_per_node=1e12), CM, 1)
        b = phase_runtime(_phase(), CM, 1)
        assert a == pytest.approx(b)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            phase_runtime(_phase(), CM, 0)

    def test_ml_training_fastest_on_booster(self):
        phase = _phase(workload=WorkloadClass.ML_TRAINING, uses_gpu=True,
                       uses_tensor_cores=True, parallel_fraction=0.998,
                       work_flops=1e18)
        assert phase_runtime(phase, ESB, 8) < phase_runtime(phase, CM, 8) / 10

    def test_analytics_fastest_on_dam(self):
        phase = _phase(workload=WorkloadClass.DATA_ANALYTICS,
                       memory_GB_per_node=400, work_flops=1e14)
        assert phase_runtime(phase, DAM, 4) < phase_runtime(phase, CM, 4)
        assert phase_runtime(phase, DAM, 4) < phase_runtime(phase, ESB, 4)


class TestWorkloadMix:
    def test_deterministic(self):
        a = synthetic_workload_mix(n_jobs=10, seed=5)
        b = synthetic_workload_mix(n_jobs=10, seed=5)
        assert [j.name for j in a] == [j.name for j in b]
        assert [j.arrival_time for j in a] == [j.arrival_time for j in b]

    def test_arrivals_monotone(self):
        jobs = synthetic_workload_mix(n_jobs=20, seed=1)
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)

    def test_contains_multiphase_pipelines(self):
        jobs = synthetic_workload_mix(n_jobs=40, seed=2)
        multi = [j for j in jobs if len(j.phases) > 1]
        assert multi, "mix should include intertwined HPC+HPDA pipelines"
        pipeline = multi[0]
        kinds = [p.workload for p in pipeline.phases]
        assert WorkloadClass.ML_TRAINING in kinds

    def test_covers_fig2_classes(self):
        jobs = synthetic_workload_mix(n_jobs=60, seed=3)
        kinds = {p.workload for j in jobs for p in j.phases}
        assert WorkloadClass.SIMULATION_LOWSCALE in kinds
        assert WorkloadClass.SIMULATION_HIGHSCALE in kinds
        assert WorkloadClass.DATA_ANALYTICS in kinds

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            synthetic_workload_mix(n_jobs=0)
