"""Module inventory, allocation and the MSA system presets."""

import pytest

from repro.core import (
    BoosterModule,
    ClusterModule,
    DataAnalyticsModule,
    DEEP_CM_NODE,
    DEEP_DAM_NODE,
    DEEP_ESB_NODE,
    ModuleKind,
    MSASystem,
    NamModule,
    QuantumModule,
    StorageModule,
    deep_system,
    homogeneous_system,
    juwels_system,
    JUWELS_CLUSTER_NODE,
)
from repro.core.module import AllocationError


class TestAllocation:
    def test_allocate_release_roundtrip(self):
        cm = ClusterModule("cm", DEEP_CM_NODE, 10)
        nodes = cm.allocate(4)
        assert cm.free_nodes == 6 and cm.busy_nodes == 4
        cm.release(nodes)
        assert cm.free_nodes == 10

    def test_allocation_deterministic_lowest_first(self):
        cm = ClusterModule("cm", DEEP_CM_NODE, 5)
        assert cm.allocate(3) == [0, 1, 2]

    def test_over_allocation_raises(self):
        cm = ClusterModule("cm", DEEP_CM_NODE, 2)
        with pytest.raises(AllocationError):
            cm.allocate(3)

    def test_double_release_raises(self):
        cm = ClusterModule("cm", DEEP_CM_NODE, 2)
        nodes = cm.allocate(1)
        cm.release(nodes)
        with pytest.raises(AllocationError):
            cm.release(nodes)

    def test_release_out_of_range_raises(self):
        cm = ClusterModule("cm", DEEP_CM_NODE, 2)
        with pytest.raises(AllocationError):
            cm.release([99])

    def test_negative_allocation_rejected(self):
        cm = ClusterModule("cm", DEEP_CM_NODE, 2)
        with pytest.raises(ValueError):
            cm.allocate(-1)


class TestModuleInventory:
    def test_totals(self):
        dam = DataAnalyticsModule("dam", DEEP_DAM_NODE, 16)
        assert dam.total_cpu_cores == 16 * 40
        assert dam.total_gpus == 16
        assert dam.total_fpgas == 16
        assert dam.total_nvm_GB == 16 * 2048.0

    def test_kind_tags(self):
        assert ClusterModule("a", DEEP_CM_NODE, 1).kind is ModuleKind.CLUSTER
        assert BoosterModule("b", DEEP_ESB_NODE, 1).kind is ModuleKind.BOOSTER
        assert DataAnalyticsModule("c", DEEP_DAM_NODE, 1).kind is \
            ModuleKind.DATA_ANALYTICS

    def test_capability_vector(self):
        cap = ClusterModule("cm", DEEP_CM_NODE, 4).capability()
        assert cap["gpu_flops"] == 0.0
        assert cap["scalability"] == 4.0

    def test_topology_matches_node_count(self):
        esb = BoosterModule("esb", DEEP_ESB_NODE, 20)
        assert len(esb.topology.terminals) == 20


class TestServiceModules:
    def test_storage_aggregate_bandwidth(self):
        sssm = StorageModule("s", capacity_PB=2.0, n_targets=16, target_GBps=5.0)
        assert sssm.aggregate_GBps == 80.0

    def test_storage_filesystem_factory(self):
        fs = StorageModule("s", capacity_PB=1.0, n_targets=8).filesystem()
        assert fs.n_targets == 8

    def test_nam_device_factory(self):
        nam = NamModule("nam", capacity_GB=512.0).device()
        assert nam.capacity_bytes == 512 * 1024 ** 3

    def test_quantum_module_annealer_factory(self):
        qm = QuantumModule("qm", n_qubits=2048, n_couplers=6016,
                           topology_family="chimera")
        annealer = qm.annealer()
        assert annealer.device.n_qubits == 2048


class TestPresets:
    def test_deep_has_all_module_kinds(self):
        deep = deep_system()
        kinds = {m.kind for m in deep.modules.values()}
        assert kinds == {ModuleKind.CLUSTER, ModuleKind.BOOSTER,
                         ModuleKind.DATA_ANALYTICS, ModuleKind.STORAGE,
                         ModuleKind.NAM, ModuleKind.QUANTUM}

    def test_deep_dam_is_table_one(self):
        dam = deep_system().module("dam")
        assert dam.n_nodes == 16
        assert dam.total_gpus == 16
        assert dam.total_fpgas == 16
        # 32 TB aggregated NVM as the paper states.
        assert dam.total_nvm_GB == pytest.approx(32 * 1024)

    def test_deep_quantum_is_advantage(self):
        qm = deep_system().module("qm")
        assert qm.n_qubits == 5000
        assert qm.n_couplers == 35000

    def test_juwels_totals_match_paper_within_1pct(self):
        ju = juwels_system()
        cluster_cores = (ju.module("cluster").total_cpu_cores
                         + ju.module("cluster_gpu").total_cpu_cores)
        booster_cores = (ju.module("booster").total_cpu_cores
                         + ju.module("booster_svc").total_cpu_cores)
        assert abs(cluster_cores - 122_768) / 122_768 < 0.011
        assert abs(booster_cores - 45_024) / 45_024 < 0.01

    def test_juwels_gpu_counts_exact(self):
        ju = juwels_system()
        assert ju.module("cluster_gpu").total_gpus == 224
        assert ju.module("booster").total_gpus == 3744

    def test_juwels_node_counts(self):
        ju = juwels_system()
        cluster_nodes = (ju.module("cluster").n_nodes
                         + ju.module("cluster_gpu").n_nodes)
        booster_nodes = (ju.module("booster").n_nodes
                         + ju.module("booster_svc").n_nodes)
        assert cluster_nodes == 2583
        assert booster_nodes == 940

    def test_homogeneous_single_compute_module(self):
        homo = homogeneous_system("flat", JUWELS_CLUSTER_NODE, 100)
        assert list(homo.compute_modules()) == ["all"]


class TestMSASystem:
    def test_duplicate_module_key_rejected(self):
        sys = MSASystem("x")
        sys.add_module("cm", ClusterModule("cm", DEEP_CM_NODE, 1))
        with pytest.raises(ValueError):
            sys.add_module("cm", ClusterModule("cm2", DEEP_CM_NODE, 1))

    def test_unknown_module_key(self):
        with pytest.raises(KeyError):
            deep_system().module("nope")

    def test_federation_built_over_compute_modules(self):
        deep = deep_system()
        topo = deep.federation
        assert ("federation", 0) in topo.graph.nodes

    def test_inter_module_transfer_positive(self):
        deep = deep_system()
        t = deep.inter_module_transfer_time("cm", "dam", 1e9)
        assert t > 0
        assert deep.inter_module_transfer_time("cm", "cm", 1e9) == 0.0

    def test_inventory_and_describe(self):
        deep = deep_system()
        rows = deep.inventory()
        assert len(rows) == 6
        text = deep.describe()
        assert "DEEP" in text and "qubits" in text
