"""The heterogeneous scheduler and the Fig. 2 (E2) placement experiment.

System and job construction comes from the shared fixtures in
``conftest.py`` (``small_system`` / ``make_small_system``, ``gpu_job``,
``cpu_job``).
"""

import pytest

from repro.core import (
    ClusterModule,
    BoosterModule,
    DataAnalyticsModule,
    DEEP_CM_NODE,
    DEEP_DAM_NODE,
    DEEP_ESB_NODE,
    Job,
    JobPhase,
    MSASystem,
    MsaScheduler,
    PlacementPolicy,
    SchedulerPolicy,
    StorageModule,
    WorkloadClass,
    homogeneous_system,
    schedule_workload,
    synthetic_workload_mix,
)


class TestBasicScheduling:
    def test_single_job_completes(self, small_system, gpu_job):
        report = schedule_workload(small_system, [gpu_job()])
        assert len(report.completion_times) == 1
        assert report.makespan > 0

    def test_matchmaking_places_gpu_job_on_booster(self, small_system, gpu_job):
        report = schedule_workload(small_system, [gpu_job()])
        assert report.allocations[0].module_key == "esb"

    def test_matchmaking_places_cpu_job_on_cluster(self, small_system, cpu_job):
        report = schedule_workload(small_system, [cpu_job()])
        assert report.allocations[0].module_key == "cm"

    def test_analytics_lands_on_dam(self, small_system):
        job = Job(name="spark", phases=[JobPhase(
            name="pipeline", workload=WorkloadClass.DATA_ANALYTICS,
            work_flops=1e14, nodes=2, memory_GB_per_node=400.0)])
        report = schedule_workload(small_system, [job])
        assert report.allocations[0].module_key == "dam"

    def test_multiphase_job_spans_modules(self, small_system):
        job = Job(name="pipeline", phases=[
            JobPhase(name="prep", workload=WorkloadClass.SIMULATION_LOWSCALE,
                     work_flops=1e14, nodes=2),
            JobPhase(name="train", workload=WorkloadClass.ML_TRAINING,
                     work_flops=1e17, nodes=8, uses_gpu=True,
                     uses_tensor_cores=True, parallel_fraction=0.99),
        ])
        report = schedule_workload(small_system, [job])
        modules = [a.module_key for a in report.allocations]
        assert modules == ["cm", "esb"]

    def test_phases_run_in_order(self, small_system):
        job = Job(name="j", phases=[
            JobPhase(name=f"s{i}", workload=WorkloadClass.SIMULATION_LOWSCALE,
                     work_flops=1e13, nodes=1) for i in range(3)])
        report = schedule_workload(small_system, [job])
        allocs = sorted(report.allocations, key=lambda a: a.phase_index)
        for earlier, later in zip(allocs, allocs[1:]):
            assert later.start >= earlier.end

    def test_all_nodes_released_at_end(self, small_system):
        sched = MsaScheduler(small_system)
        sched.submit_all(synthetic_workload_mix(n_jobs=8, seed=0))
        sched.run()
        for module in small_system.compute_modules().values():
            assert module.free_nodes == module.n_nodes


class TestQueueing:
    def test_contention_creates_waits(self, small_system, gpu_job):
        jobs = [gpu_job(f"g{i}", arrival=0.0, nodes=8) for i in range(3)]
        report = schedule_workload(small_system, jobs)
        waits = sorted(report.wait_times.values())
        assert waits[0] == 0.0
        assert waits[-1] > 0.0

    def test_patience_keeps_training_off_cpu_cluster(self, small_system, gpu_job):
        # Even with the booster saturated, DL training waits rather than
        # running 100x slower on the CPU cluster.
        jobs = [gpu_job(f"g{i}", arrival=0.0, nodes=8) for i in range(4)]
        report = schedule_workload(small_system, jobs)
        for alloc in report.allocations:
            assert alloc.module_key != "cm"

    def test_backfill_lets_small_cpu_jobs_through(self, small_system,
                                                  gpu_job, cpu_job):
        jobs = [gpu_job("g0", nodes=8), gpu_job("g1", nodes=8),
                cpu_job("c0")]
        report = schedule_workload(
            small_system, jobs, queue_policy=SchedulerPolicy.FCFS_BACKFILL)
        # The CPU job must not wait behind the queued GPU job.
        assert report.wait_times["c0"] == 0.0

    def test_strict_fcfs_blocks_later_jobs(self, small_system,
                                           gpu_job, cpu_job):
        jobs = [gpu_job("g0", nodes=8), gpu_job("g1", nodes=8),
                cpu_job("c0")]
        report = schedule_workload(
            small_system, jobs, queue_policy=SchedulerPolicy.FCFS)
        assert report.wait_times["c0"] > 0.0

    def test_first_fit_ignores_matching(self, small_system, gpu_job):
        report = schedule_workload(
            small_system, [gpu_job()], placement=PlacementPolicy.FIRST_FIT)
        # Alphabetically first module with room is "cm".
        assert report.allocations[0].module_key == "cm"


class TestReport:
    def test_utilisation_in_unit_range(self, small_system):
        report = schedule_workload(small_system,
                                   synthetic_workload_mix(n_jobs=6, seed=4))
        for util in report.module_utilisation.values():
            assert 0.0 <= util <= 1.0

    def test_energy_positive_and_split(self, small_system):
        report = schedule_workload(small_system,
                                   synthetic_workload_mix(n_jobs=6, seed=4))
        assert report.energy_busy_joules > 0
        assert report.energy_idle_joules > 0
        assert report.energy_total_joules == pytest.approx(
            report.energy_busy_joules + report.energy_idle_joules)

    def test_summary_renders(self, small_system, gpu_job):
        report = schedule_workload(small_system, [gpu_job()])
        text = report.summary()
        assert "makespan" in text and "util" in text

    def test_deterministic_schedule(self, make_small_system):
        jobs = synthetic_workload_mix(n_jobs=10, seed=9)
        r1 = schedule_workload(make_small_system(), jobs)
        r2 = schedule_workload(make_small_system(),
                               synthetic_workload_mix(n_jobs=10, seed=9))
        assert r1.makespan == r2.makespan
        assert r1.completion_times == r2.completion_times


class TestFig2Experiment:
    """The E2 shape: MSA beats both homogeneous baselines on mixed work."""

    def _jobs(self):
        return synthetic_workload_mix(n_jobs=18, seed=7,
                                      mean_interarrival_s=120.0)

    def _msa(self):
        sys = MSASystem("MSA")
        sys.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, 64))
        sys.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, 61))
        sys.add_module("dam", DataAnalyticsModule("DAM", DEEP_DAM_NODE, 16))
        sys.add_module("sssm", StorageModule("SSSM", capacity_PB=2.0))
        return sys

    def test_msa_beats_cluster_only_on_makespan_and_energy(self):
        msa = schedule_workload(self._msa(), self._jobs())
        cluster = schedule_workload(
            homogeneous_system("cluster-only", DEEP_CM_NODE, 141),
            self._jobs())
        assert msa.makespan < cluster.makespan / 5
        assert msa.energy_total_joules < cluster.energy_total_joules

    def test_msa_beats_booster_only_on_makespan(self):
        msa = schedule_workload(self._msa(), self._jobs())
        booster = schedule_workload(
            homogeneous_system("booster-only", DEEP_ESB_NODE, 141,
                               as_booster=True),
            self._jobs())
        assert msa.makespan < booster.makespan


class TestFairShare:
    """Fair-share across user communities (the multi-community centre)."""

    def _jobs(self, gpu_job):
        # One community floods the queue; another submits a single job last.
        flood = [gpu_job(f"rs-{i}", nodes=8) for i in range(4)]
        for job in flood:
            job.user = "remote-sensing"
        latecomer = gpu_job("health-0", nodes=8)
        latecomer.user = "health"
        return flood + [latecomer]

    def test_fair_share_boosts_underserved_community(self, make_small_system,
                                                     gpu_job):
        fcfs = schedule_workload(make_small_system(), self._jobs(gpu_job),
                                 queue_policy=SchedulerPolicy.FCFS_BACKFILL)
        fair = schedule_workload(make_small_system(), self._jobs(gpu_job),
                                 queue_policy=SchedulerPolicy.FAIR_SHARE)
        assert fair.wait_times["health-0"] < fcfs.wait_times["health-0"]

    def test_fair_share_order_within_community_preserved(self, small_system,
                                                         gpu_job):
        report = schedule_workload(small_system, self._jobs(gpu_job),
                                   queue_policy=SchedulerPolicy.FAIR_SHARE)
        starts = {a.job_name: a.start for a in report.allocations}
        assert starts["rs-0"] <= starts["rs-1"] <= starts["rs-2"]

    def test_fair_share_completes_everything(self, small_system, gpu_job):
        report = schedule_workload(small_system, self._jobs(gpu_job),
                                   queue_policy=SchedulerPolicy.FAIR_SHARE)
        assert len(report.completion_times) == 5

    def test_default_user_tag(self, gpu_job):
        assert gpu_job().user == "default"


class TestHealthMonitors:
    """External health feeds steering placement away from suspects."""

    def test_monitor_nodes_avoided(self, small_system):
        scheduler = MsaScheduler(small_system)
        scheduler.attach_health_monitor(lambda: {"esb": {0, 1}})
        assert scheduler.suspect_nodes("esb") == frozenset({0, 1})
        assert scheduler.suspect_nodes("cm") == frozenset()

    def test_monitor_must_be_callable(self, small_system):
        scheduler = MsaScheduler(small_system)
        with pytest.raises(TypeError):
            scheduler.attach_health_monitor({"esb": {0}})

    def test_monitors_union_with_quarantine(self, small_system):
        scheduler = MsaScheduler(small_system)
        scheduler.quarantine("esb", 3)
        scheduler.attach_health_monitor(lambda: {"esb": {5}})
        assert scheduler.suspect_nodes("esb") == frozenset({3, 5})
