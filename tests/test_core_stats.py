"""The shared latency-statistics helpers (``repro.core.stats``).

One percentile implementation now serves both the streaming model and the
serving subsystem; these tests pin its semantics — linear interpolation,
validation, the summary dataclass — and check the streaming report really
delegates to it (no silent fork of the math).
"""

import numpy as np
import pytest

from repro.core.stats import (
    LatencySummary,
    latency_histogram,
    percentile,
    summarize_latencies,
)
from repro.core.streaming import StreamingConfig, simulate_stream


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self, seeded_rng):
        values = list(seeded_rng.exponential(1.0, size=200))
        for q in (0, 10, 50, 90, 95, 99, 100):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)))

    def test_single_value_is_every_percentile(self):
        assert percentile([0.25], 1) == 0.25
        assert percentile([0.25], 99) == 0.25

    def test_empty_and_bad_quantiles_raise(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_order_invariant(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 50) == percentile(sorted(values), 50)


class TestLatencySummary:
    def test_summarize(self):
        s = summarize_latencies([0.1, 0.2, 0.3, 0.4])
        assert s.count == 4
        assert s.mean_s == pytest.approx(0.25)
        assert s.p50_s == pytest.approx(0.25)
        assert s.max_s == 0.4

    def test_meets_deadline_quantiles(self):
        values = [0.1] * 97 + [10.0] * 3
        s = summarize_latencies(values)
        assert s.meets_deadline(0.2, quantile=50)
        assert s.meets_deadline(0.2, quantile=95)
        assert not s.meets_deadline(0.2, quantile=99)

    def test_meets_deadline_rejects_unknown_quantile(self):
        s = summarize_latencies([0.1])
        with pytest.raises(ValueError):
            s.meets_deadline(0.2, quantile=90)

    def test_to_text_mentions_tails(self):
        text = summarize_latencies([0.1, 0.2]).to_text()
        assert "p99" in text and "p50" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize_latencies([])


class TestLatencyHistogram:
    def test_counts_cover_all_samples(self, seeded_rng):
        values = list(seeded_rng.lognormal(-3, 1, size=500))
        edges, counts = latency_histogram(values, n_bins=12)
        assert len(counts) == 12 and len(edges) == 13
        assert counts.sum() == len(values)

    def test_edges_are_strictly_increasing(self, seeded_rng):
        values = list(seeded_rng.exponential(0.01, size=100))
        edges, _ = latency_histogram(values)
        assert (np.diff(edges) > 0).all()

    def test_zero_latencies_hit_the_floor(self):
        edges, counts = latency_histogram([0.0, 0.0, 0.1], n_bins=4)
        assert edges[0] >= 1e-6
        assert counts.sum() == 3


class TestStreamingDelegates:
    """streaming.py keeps its public API but routes through core.stats."""

    def test_report_percentiles_match_shared_math(self):
        report = simulate_stream(StreamingConfig(
            arrival_rate_per_s=5.0, service_time_s=0.1,
            n_servers=2, duration_s=200.0, seed=1))
        assert report.p50 == percentile(report.latencies_s, 50)
        assert report.p95 == percentile(report.latencies_s, 95)
        assert report.p99 == percentile(report.latencies_s, 99)

    def test_report_latency_summary(self):
        report = simulate_stream(StreamingConfig(
            arrival_rate_per_s=5.0, service_time_s=0.1,
            n_servers=2, duration_s=100.0, seed=2))
        s = report.latency_summary()
        assert isinstance(s, LatencySummary)
        assert s.count == len(report.latencies_s)
        assert s.p99_s == report.p99
