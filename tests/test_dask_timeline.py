"""The Dask-like delayed engine and the Horovod-style timeline."""

import time

import numpy as np
import pytest

from repro.analytics import Delayed, compute, delayed
from repro.distributed import Timeline, merge_timelines
from repro.mpi import run_spmd
from repro.mpi.runtime import spmd_sim_times


# ---------------------------------------------------------------------------
# delayed task graphs
# ---------------------------------------------------------------------------

class TestDelayed:
    def test_laziness(self):
        calls = []

        @_spy_list(calls)
        def work(x):
            return x + 1

        node = delayed(work)(1)
        assert calls == []                 # nothing ran
        assert node.compute() == 2
        assert calls == [1]

    def test_chained_graph(self):
        inc = delayed(lambda x: x + 1, name="inc")
        double = delayed(lambda x: x * 2, name="double")
        out = double(inc(inc(3)))
        assert out.compute() == 10

    def test_diamond_computes_shared_node_once(self):
        calls = []

        def expensive(x):
            calls.append(x)
            return x * 10

        shared = delayed(expensive)(2)
        left = delayed(lambda v: v + 1)(shared)
        right = delayed(lambda v: v + 2)(shared)
        total = delayed(lambda a, b: a + b)(left, right)
        assert total.compute() == 43
        assert calls == [2]                 # the diamond property

    def test_kwargs_dependencies(self):
        node = delayed(lambda a, b=0: a - b)(10, b=delayed(lambda: 3)())
        assert node.compute() == 7

    def test_operator_sugar(self):
        a = delayed(lambda: 2)()
        b = delayed(lambda: 3)()
        assert (a + b).compute() == 5
        assert (a * b).compute() == 6
        assert (1 + a).compute() == 3
        assert (4 * b).compute() == 12

    def test_compute_many_shares_cache(self):
        calls = []

        def base():
            calls.append(1)
            return 5

        shared = delayed(base)()
        x = delayed(lambda v: v + 1)(shared)
        y = delayed(lambda v: v * 2)(shared)
        out = compute(x, y)
        assert out == (6, 10)
        assert len(calls) == 1

    def test_compute_passes_plain_values_through(self):
        assert compute(delayed(lambda: 1)(), 42) == (1, 42)

    def test_parallel_matches_serial(self):
        rng = np.random.default_rng(0)
        mats = [rng.normal(size=(40, 40)) for _ in range(6)]
        prods = [delayed(np.matmul)(m, m) for m in mats]
        total = delayed(lambda *xs: float(sum(x.sum() for x in xs)))(*prods)
        serial = total.compute(n_workers=1)
        parallel = total.compute(n_workers=4)
        assert serial == pytest.approx(parallel)

    def test_parallel_runs_independent_branches_concurrently(self):
        started = []

        def slow(tag):
            started.append(tag)
            time.sleep(0.05)
            return tag

        branches = [delayed(slow)(i) for i in range(4)]
        gather = delayed(lambda *xs: sum(xs))(*branches)
        t0 = time.perf_counter()
        assert gather.compute(n_workers=4) == 6
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.05 * 4          # overlap happened

    def test_parallel_error_propagates(self):
        bad = delayed(lambda: 1 / 0)()
        out = delayed(lambda v: v)(bad)
        with pytest.raises(ZeroDivisionError):
            out.compute(n_workers=2)

    def test_repr(self):
        assert "inc" in repr(delayed(lambda x: x, name="inc")(1))


def _spy_list(calls):
    def decorator(fn):
        def wrapper(*args):
            calls.append(*args)
            return fn(*args)
        return wrapper
    return decorator


# ---------------------------------------------------------------------------
# timeline
# ---------------------------------------------------------------------------

class TestTimeline:
    def test_records_comm_and_compute(self):
        def fn(comm):
            tl = Timeline(comm)
            tl.mark_compute("forward", 0.010)
            tl.record("allreduce", "comm", comm.allreduce,
                      np.ones(10_000), nbytes=80_000)
            tl.mark_compute("optimizer", 0.002)
            return (len(tl.events), tl.total("compute"),
                    tl.total("comm") > 0, tl.comm_fraction())

        out = run_spmd(fn, 4)
        for n_events, compute_total, has_comm, frac in out:
            assert n_events == 3
            assert compute_total == pytest.approx(0.012)
            assert has_comm
            assert 0.0 < frac < 1.0

    def test_events_carry_simulated_times(self):
        def fn(comm):
            tl = Timeline(comm)
            tl.mark_compute("a", 0.5)
            tl.mark_compute("b", 0.25)
            return [(e.name, e.start_s, e.duration_s) for e in tl.events]

        events = run_spmd(fn, 1)[0]
        assert events[0] == ("a", 0.0, 0.5)
        assert events[1] == ("b", 0.5, 0.25)

    def test_chrome_trace_structure(self):
        def fn(comm):
            tl = Timeline(comm)
            tl.mark_compute("step", 0.001)
            return tl.to_chrome_trace()

        trace = run_spmd(fn, 2)[1]
        event = trace["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["tid"] == 1
        assert event["dur"] == pytest.approx(1000.0)   # µs

    def test_json_serialisable(self):
        import json

        def fn(comm):
            tl = Timeline(comm)
            tl.mark_compute("x", 0.001)
            return tl.to_json()

        payload = run_spmd(fn, 1)[0]
        assert json.loads(payload)["displayTimeUnit"] == "ms"

    def test_merge_orders_by_time(self):
        def fn(comm):
            tl = Timeline(comm)
            tl.mark_compute("w", 0.001 * (comm.rank + 1))
            tl.record("sync", "comm", comm.barrier)
            return tl

        timelines = run_spmd(fn, 3)
        merged = merge_timelines(timelines)
        stamps = [e["ts"] for e in merged["traceEvents"]]
        assert stamps == sorted(stamps)
        assert len(merged["traceEvents"]) == 6

    def test_by_name(self):
        def fn(comm):
            tl = Timeline(comm)
            tl.mark_compute("fwd", 0.001)
            tl.mark_compute("fwd", 0.001)
            tl.mark_compute("bwd", 0.002)
            return len(tl.by_name("fwd"))

        assert run_spmd(fn, 1) == [2]

    def test_training_loop_timeline_shows_comm_growth(self):
        """The instrument the paper's [20]-style tuning relies on: comm
        fraction visibly grows with the worker count."""
        from repro.distributed import DistributedOptimizer, broadcast_parameters
        from repro.ml import SGD, Tensor, cross_entropy
        from repro.ml.models import MLP

        rng = np.random.default_rng(0)
        X = rng.normal(size=(32, 2))
        y = (X[:, 0] > 0).astype(int)

        def fn(comm):
            model = MLP([2, 16, 2], seed=0)
            broadcast_parameters(model, comm)
            opt = DistributedOptimizer(SGD(model.parameters(), lr=0.1), comm)
            tl = Timeline(comm)
            for _ in range(3):
                tl.mark_compute("fwd+bwd", 0.005)
                loss = cross_entropy(model(Tensor(X)), y)
                opt.zero_grad()
                loss.backward()
                tl.record("allreduce", "comm", opt.step)
            return tl.comm_fraction()

        frac2 = run_spmd(fn, 2)[0]
        frac8 = run_spmd(fn, 8)[0]
        assert frac8 > frac2
