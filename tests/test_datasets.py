"""Synthetic dataset generators: determinism, structure, learnability hooks."""

import numpy as np
import pytest

from repro.datasets import (
    BigEarthNetConfig,
    CXR_CLASSES,
    CxrConfig,
    IcuCohort,
    IcuConfig,
    LAND_COVER_CLASSES,
    SENTINEL2_BANDS,
    SyntheticBigEarthNet,
    SyntheticCovidx,
    VITAL_CHANNELS,
    berlin_severity,
    make_imputation_windows,
)


class TestBigEarthNet:
    def test_shapes_and_dtypes(self):
        ds = SyntheticBigEarthNet(BigEarthNetConfig(
            n_samples=50, patch_size=12, n_classes=5, seed=0))
        X, y = ds.generate()
        assert X.shape == (50, 12, 12, 12)
        assert y.shape == (50,)
        assert y.dtype == np.int64
        assert len(SENTINEL2_BANDS) == 12

    def test_deterministic(self):
        cfg = BigEarthNetConfig(n_samples=20, patch_size=8, seed=3)
        X1, y1 = SyntheticBigEarthNet(cfg).generate()
        X2, y2 = SyntheticBigEarthNet(cfg).generate()
        np.testing.assert_array_equal(X1, X2)
        np.testing.assert_array_equal(y1, y2)

    def test_different_seeds_differ(self):
        X1, _ = SyntheticBigEarthNet(BigEarthNetConfig(
            n_samples=5, patch_size=8, seed=1)).generate()
        X2, _ = SyntheticBigEarthNet(BigEarthNetConfig(
            n_samples=5, patch_size=8, seed=2)).generate()
        assert not np.array_equal(X1, X2)

    def test_classes_spectrally_separable(self):
        """Water absorbs NIR, vegetation reflects it — mean band profiles
        must differ strongly between classes."""
        ds = SyntheticBigEarthNet(BigEarthNetConfig(
            n_samples=200, patch_size=8, n_classes=10, seed=0,
            noise_sigma=0.01))
        X, y = ds.generate()
        water = X[y == LAND_COVER_CLASSES.index("water-body")]
        forest = X[y == LAND_COVER_CLASSES.index("broadleaf-forest")]
        nir = SENTINEL2_BANDS.index("B08")
        assert forest[:, nir].mean() > 4 * water[:, nir].mean()

    def test_multilabel_mode(self):
        cfg = BigEarthNetConfig(n_samples=40, patch_size=12, n_classes=6,
                                multi_label=True, max_labels=3, seed=1)
        X, Y = SyntheticBigEarthNet(cfg).generate_multilabel()
        assert Y.shape == (40, 6)
        per_sample = Y.sum(axis=1)
        assert per_sample.min() >= 1
        assert per_sample.max() <= 3

    def test_single_label_mode_rejects_multilabel_call(self):
        cfg = BigEarthNetConfig(multi_label=True)
        with pytest.raises(ValueError):
            SyntheticBigEarthNet(cfg).generate()

    def test_pixels_for_autoencoder(self):
        ds = SyntheticBigEarthNet(BigEarthNetConfig(n_classes=4, seed=0))
        spectra, labels = ds.pixels(100)
        assert spectra.shape == (100, 12)
        assert labels.max() < 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BigEarthNetConfig(n_classes=99)
        with pytest.raises(ValueError):
            BigEarthNetConfig(patch_size=2)
        with pytest.raises(ValueError):
            BigEarthNetConfig(noise_sigma=-0.1)


class TestCovidx:
    def test_shapes_and_classes(self):
        X, y = SyntheticCovidx(CxrConfig(n_samples=60, image_size=24,
                                         seed=0)).generate()
        assert X.shape == (60, 1, 24, 24)
        assert set(np.unique(y)) <= {0, 1, 2}
        assert len(CXR_CLASSES) == 3

    def test_deterministic(self):
        cfg = CxrConfig(n_samples=10, image_size=20, seed=4)
        X1, y1 = SyntheticCovidx(cfg).generate()
        X2, y2 = SyntheticCovidx(cfg).generate()
        np.testing.assert_array_equal(X1, X2)

    def test_covid_is_bilateral_pneumonia_focal(self):
        """COVID opacities hit both lungs; pneumonia one lung only —
        measured via added brightness vs the normal template."""
        gen = SyntheticCovidx(CxrConfig(n_samples=300, image_size=32,
                                        seed=1, noise_sigma=0.0))
        X, y = gen.generate()
        normal = X[y == 0].mean(axis=0)[0]
        hw = 32
        left = (slice(None), slice(0, hw // 2))
        right = (slice(None), slice(hw // 2, hw))

        covid_extra = X[y == 2].mean(axis=0)[0] - normal
        pneu = X[y == 1] - normal[None, None]
        assert covid_extra[left].sum() > 0.1
        assert covid_extra[right].sum() > 0.1
        # Each pneumonia image is one-sided: per-image asymmetry is high.
        asym = [abs(img[0][left].sum() - img[0][right].sum())
                for img in pneu]
        total = [abs(img[0][left].sum()) + abs(img[0][right].sum())
                 for img in pneu]
        assert np.median(np.array(asym) / np.maximum(total, 1e-9)) > 0.3

    def test_external_validation_is_shifted_but_same_task(self):
        gen = SyntheticCovidx(CxrConfig(n_samples=20, image_size=24, seed=0))
        Xe, ye = gen.generate_external_validation(30)
        assert Xe.shape == (30, 1, 24, 24)
        X, _ = gen.generate()
        # Distribution shift: different gain.
        assert abs(Xe.mean() - X.mean()) > 0.005

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CxrConfig(image_size=8)
        with pytest.raises(ValueError):
            CxrConfig(noise_sigma=-1)


class TestIcuCohort:
    def _cohort(self, **kw):
        defaults = dict(n_patients=12, seed=2)
        defaults.update(kw)
        return IcuCohort(IcuConfig(**defaults)).generate()

    def test_record_structure(self):
        records = self._cohort()
        assert len(records) == 12
        rec = records[0]
        assert rec.vitals.shape[1] == len(VITAL_CHANNELS)
        assert rec.mask.shape == rec.vitals.shape
        assert rec.truth.shape == rec.vitals.shape

    def test_varying_lengths(self):
        lengths = {r.n_hours for r in self._cohort(n_patients=20)}
        assert len(lengths) > 3

    def test_missingness_present_and_masked_as_nan(self):
        for rec in self._cohort():
            missing = ~rec.mask
            assert missing.any()
            assert np.isnan(rec.vitals[missing]).all()
            assert not np.isnan(rec.vitals[rec.mask]).any()

    def test_truth_is_dense(self):
        for rec in self._cohort():
            assert np.isfinite(rec.truth).all()

    def test_ards_fraction_controls_incidence(self):
        none = self._cohort(n_patients=20, ards_fraction=0.0)
        all_ards = self._cohort(n_patients=20, ards_fraction=1.0)
        assert not any(r.has_ards for r in none)
        assert all(r.has_ards for r in all_ards)

    def test_ards_pf_crosses_berlin_threshold(self):
        records = self._cohort(n_patients=20, ards_fraction=1.0,
                               min_hours=48, max_hours=72)
        for rec in records:
            pf = rec.pf_ratio()
            post = pf[rec.ards_onset_hour + 12:]
            assert post.min() < 300.0      # Berlin definition onset

    def test_healthy_patients_stay_oxygenated(self):
        records = self._cohort(n_patients=10, ards_fraction=0.0)
        for rec in records:
            assert np.median(rec.pf_ratio()) > 250.0

    def test_physiological_coupling_hr_rises_with_hypoxia(self):
        records = self._cohort(n_patients=20, ards_fraction=1.0,
                               min_hours=60, max_hours=80)
        hr = VITAL_CHANNELS.index("heart_rate")
        pre = np.concatenate([r.truth[:r.ards_onset_hour, hr]
                              for r in records])
        post = np.concatenate([r.truth[r.ards_onset_hour + 12:, hr]
                               for r in records])
        assert post.mean() > pre.mean() + 5.0

    def test_deterministic(self):
        a = self._cohort()
        b = self._cohort()
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.truth, rb.truth)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            IcuConfig(n_patients=0)
        with pytest.raises(ValueError):
            IcuConfig(ards_fraction=1.5)
        with pytest.raises(ValueError):
            IcuConfig(missing_rate=1.0)
        with pytest.raises(ValueError):
            IcuConfig(min_hours=4)


class TestBerlin:
    def test_severity_bands(self):
        assert berlin_severity(350) == "none"
        assert berlin_severity(250) == "mild"
        assert berlin_severity(150) == "moderate"
        assert berlin_severity(80) == "severe"

    def test_boundaries(self):
        assert berlin_severity(300) == "none"
        assert berlin_severity(299.9) == "mild"
        assert berlin_severity(100) == "moderate"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            berlin_severity(-1)


class TestImputationWindows:
    def test_shapes(self):
        records = IcuCohort(IcuConfig(n_patients=5, seed=1)).generate()
        X, y, stats = make_imputation_windows(records, window=6,
                                              target_channel=1)
        assert X.shape[1:] == (6, len(VITAL_CHANNELS))
        assert y.shape == (X.shape[0], 1)
        assert stats["window"] == 6

    def test_no_nans_after_fill(self):
        records = IcuCohort(IcuConfig(n_patients=5, seed=1)).generate()
        X, y, _ = make_imputation_windows(records)
        assert np.isfinite(X).all() and np.isfinite(y).all()

    def test_normalisation_statistics(self):
        records = IcuCohort(IcuConfig(n_patients=10, seed=3)).generate()
        X, y, stats = make_imputation_windows(records, target_channel=0)
        # Observed (non-zero-filled) entries should be roughly standardised.
        assert abs(np.median(y)) < 1.5
        assert stats["std"].shape == (len(VITAL_CHANNELS),)

    def test_validation(self):
        records = IcuCohort(IcuConfig(n_patients=2, seed=0)).generate()
        with pytest.raises(ValueError):
            make_imputation_windows(records, window=0)
        with pytest.raises(ValueError):
            make_imputation_windows(records, target_channel=99)
        with pytest.raises(ValueError):
            make_imputation_windows([])
