"""ZeRO stage-1 sharding and the Fig. 3 scaling performance model (E3)."""

import numpy as np
import pytest

from repro.core.hardware import NVIDIA_A100, NVIDIA_V100
from repro.distributed import (
    DistributedTrainingPerfModel,
    TrainingRecipe,
    ZeroStage1Optimizer,
)
from repro.distributed.horovod import broadcast_parameters
from repro.ml import Adam, ArrayDataset, DistributedDataLoader, Tensor, cross_entropy
from repro.ml.models import MLP
from repro.mpi import run_spmd

rng = np.random.default_rng(2)
X = np.concatenate([rng.normal(-2, 1, size=(48, 2)),
                    rng.normal(2, 1, size=(48, 2))])
Y = np.array([0] * 48 + [1] * 48)


def _zero_train(comm, epochs=2, lr=0.01):
    model = MLP([2, 8, 2], seed=3)
    broadcast_parameters(model, comm)
    opt = ZeroStage1Optimizer(model.parameters(), comm, lr=lr)
    loader = DistributedDataLoader(ArrayDataset(X, Y), batch_size=12,
                                   rank=comm.rank, world_size=comm.size,
                                   seed=1)
    for epoch in range(epochs):
        loader.set_epoch(epoch)
        for xb, yb in loader:
            loss = cross_entropy(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
    return model, opt


class TestZeroStage1:
    @pytest.mark.parametrize("ws", [1, 2, 4])
    def test_replicas_identical(self, ws):
        def fn(comm):
            model, _ = _zero_train(comm)
            return model.state_dict()

        states = run_spmd(fn, ws)
        for state in states[1:]:
            for key in states[0]:
                np.testing.assert_allclose(states[0][key], state[key],
                                           atol=1e-10)

    def test_matches_unsharded_adam(self):
        """ZeRO-1 must produce the same weights as plain DP Adam."""
        def zero_fn(comm):
            model, _ = _zero_train(comm, epochs=2)
            return model.state_dict()

        def plain_fn(comm):
            from repro.distributed import DistributedOptimizer

            model = MLP([2, 8, 2], seed=3)
            broadcast_parameters(model, comm)
            opt = DistributedOptimizer(Adam(model.parameters(), lr=0.01), comm)
            loader = DistributedDataLoader(ArrayDataset(X, Y), batch_size=12,
                                           rank=comm.rank,
                                           world_size=comm.size, seed=1)
            for epoch in range(2):
                loader.set_epoch(epoch)
                for xb, yb in loader:
                    loss = cross_entropy(model(Tensor(xb)), yb)
                    opt.zero_grad()
                    loss.backward()
                    opt.step()
            return model.state_dict()

        zero_state = run_spmd(zero_fn, 4)[0]
        plain_state = run_spmd(plain_fn, 4)[0]
        for key in zero_state:
            np.testing.assert_allclose(zero_state[key], plain_state[key],
                                       atol=1e-8)

    def test_memory_sharded_by_world_size(self):
        def fn(comm):
            model = MLP([2, 16, 2], seed=0)
            opt = ZeroStage1Optimizer(model.parameters(), comm, lr=0.01)
            return (opt.local_state_bytes, opt.unsharded_state_bytes)

        for ws in (1, 2, 4):
            out = run_spmd(fn, ws)
            local_total = sum(local for local, _ in out)
            unsharded = out[0][1]
            # The union of all shards is exactly one unsharded copy.
            assert local_total == unsharded
            assert out[0][0] <= unsharded // ws + 64

    def test_memory_saving_factor(self):
        def fn(comm):
            model = MLP([2, 32, 2], seed=0)
            opt = ZeroStage1Optimizer(model.parameters(), comm, lr=0.01)
            return opt.memory_saving_factor

        out = run_spmd(fn, 4)
        assert out[0] == pytest.approx(4.0, rel=0.2)

    def test_validation(self):
        def bad_lr(comm):
            ZeroStage1Optimizer(MLP([2, 2]).parameters(), comm, lr=0.0)

        from repro.mpi import SpmdFailure

        with pytest.raises(SpmdFailure):
            run_spmd(bad_lr, 1)


class TestPerfModel:
    """The Fig. 3 series: near-linear speedup, decaying efficiency, tuned
    128-GPU run better than naive — the paper's [18] → [20] progression."""

    def setup_method(self):
        self.model = DistributedTrainingPerfModel()

    def test_speedup_monotone_in_gpus(self):
        curve = self.model.scaling_curve([1, 2, 4, 8, 16, 32, 64, 96, 128])
        speedups = [pt.speedup for pt in curve]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0)

    def test_significant_speedup_at_96_gpus(self):
        pt = self.model.scaling_curve([96])[0]
        assert pt.speedup > 48            # 'significant speed-up'
        assert pt.efficiency > 0.5

    def test_efficiency_decays_with_scale(self):
        curve = self.model.scaling_curve([2, 16, 128])
        assert curve[0].efficiency > curve[1].efficiency > curve[2].efficiency

    def test_comm_fraction_grows_with_scale(self):
        curve = self.model.scaling_curve([2, 128])
        assert curve[1].comm_fraction >= curve[0].comm_fraction

    def test_tuned_recipe_improves_128_gpu_point(self):
        naive = self.model.scaling_curve([128])[0]
        tuned = self.model.with_recipe(
            self.model.recipe.tuned()).scaling_curve([128])[0]
        assert tuned.speedup > naive.speedup
        assert tuned.efficiency > 0.9

    def test_epoch_time_decreases_with_gpus(self):
        assert self.model.epoch_time(128) < self.model.epoch_time(96) < \
            self.model.epoch_time(1)

    def test_steps_per_epoch_shrink_with_global_batch(self):
        assert self.model.steps_per_epoch(128) < self.model.steps_per_epoch(1)
        assert self.model.steps_per_epoch(1) == pytest.approx(
            np.ceil(self.model.dataset_size / self.model.recipe.batch_per_gpu))

    def test_v100_compute_slower_than_a100(self):
        from dataclasses import replace

        v100 = DistributedTrainingPerfModel(gpu=NVIDIA_V100)
        a100 = DistributedTrainingPerfModel(gpu=NVIDIA_A100)
        assert v100.compute_time_per_step() > 2 * a100.compute_time_per_step()

    def test_fp16_wire_halves_grad_bytes(self):
        fp32 = self.model.grad_bytes()
        fp16 = self.model.with_recipe(TrainingRecipe(grad_wire_bytes=2)).grad_bytes()
        assert fp16 == pytest.approx(fp32 / 2)

    def test_single_gpu_has_no_comm(self):
        assert self.model.allreduce_time(1) == 0.0
        assert self.model.scaling_curve([1])[0].comm_fraction == 0.0

    def test_invalid_gpu_counts(self):
        with pytest.raises(ValueError):
            self.model.scaling_curve([])
        with pytest.raises(ValueError):
            self.model.scaling_curve([0])

    def test_overlap_cannot_exceed_backward_window(self):
        # With full overlap, the step is never shorter than pure compute.
        recipe = TrainingRecipe(comm_overlap=1.0)
        m = self.model.with_recipe(recipe)
        assert m.step_time(128) >= m.compute_time_per_step() * 0.999
