"""Horovod-style data parallelism: replica consistency, equivalence to
serial large-batch training, compression, traffic accounting."""

import numpy as np
import pytest

from repro.distributed import (
    DistributedOptimizer,
    Fp16Compression,
    Horovod,
    NoCompression,
    allreduce_average,
    broadcast_parameters,
)
from repro.ml import (
    Adam,
    ArrayDataset,
    DistributedDataLoader,
    SGD,
    Tensor,
    cross_entropy,
)
from repro.ml.models import MLP
from repro.mpi import run_spmd

rng = np.random.default_rng(0)
X = np.concatenate([rng.normal(-2, 1, size=(64, 2)),
                    rng.normal(2, 1, size=(64, 2))])
Y = np.array([0] * 64 + [1] * 64)


def _train(comm, epochs=2, compression=None, lr=0.05, seed_by_rank=True):
    model = MLP([2, 8, 2], seed=comm.rank * 11 if seed_by_rank else 3)
    broadcast_parameters(model, comm)
    opt = DistributedOptimizer(SGD(model.parameters(), lr=lr), comm,
                               compression=compression)
    loader = DistributedDataLoader(ArrayDataset(X, Y), batch_size=16,
                                   rank=comm.rank, world_size=comm.size,
                                   seed=1)
    for epoch in range(epochs):
        loader.set_epoch(epoch)
        for xb, yb in loader:
            loss = cross_entropy(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
    return model, opt


class TestContext:
    def test_horovod_rank_size(self):
        def fn(comm):
            hvd = Horovod(comm)
            return (hvd.rank(), hvd.size(), hvd.local_rank())

        assert run_spmd(fn, 3) == [(0, 3, 0), (1, 3, 1), (2, 3, 2)]


class TestBroadcastParameters:
    def test_all_replicas_match_root(self):
        def fn(comm):
            model = MLP([2, 4, 2], seed=comm.rank * 7)
            broadcast_parameters(model, comm)
            return model.state_dict()

        states = run_spmd(fn, 4)
        for state in states[1:]:
            for key in states[0]:
                np.testing.assert_array_equal(states[0][key], state[key])


@pytest.mark.parametrize("ws", [1, 2, 4])
class TestReplicaConsistency:
    def test_replicas_identical_after_training(self, ws):
        def fn(comm):
            model, _ = _train(comm)
            return model.state_dict()

        states = run_spmd(fn, ws)
        for state in states[1:]:
            for key in states[0]:
                np.testing.assert_allclose(states[0][key], state[key],
                                           atol=1e-12)

    def test_replicas_identical_with_fp16(self, ws):
        def fn(comm):
            model, _ = _train(comm, compression=Fp16Compression())
            return model.state_dict()

        states = run_spmd(fn, ws)
        for state in states[1:]:
            for key in states[0]:
                np.testing.assert_allclose(states[0][key], state[key],
                                           atol=1e-12)


class TestEquivalenceToSerial:
    def test_two_rank_training_matches_global_batch_serial(self):
        """Data parallelism over p ranks with per-rank batch b must equal
        serial training with batch p*b (gradient averaging identity)."""
        def fn(comm):
            model = MLP([2, 8, 2], seed=3)
            broadcast_parameters(model, comm)
            opt = DistributedOptimizer(SGD(model.parameters(), lr=0.1), comm)
            sampler_idx = np.arange(comm.rank, 64, comm.size)
            xb, yb = X[sampler_idx], Y[sampler_idx]
            loss = cross_entropy(model(Tensor(xb)), yb)
            opt.zero_grad()
            loss.backward()
            opt.step()
            return model.state_dict()

        dist_state = run_spmd(fn, 2)[0]

        serial = MLP([2, 8, 2], seed=3)
        opt = SGD(serial.parameters(), lr=0.1)
        # The union of both rank shards, with matching per-shard weights:
        # mean over ranks of per-shard means == global mean when shards are
        # equal-sized (they are: 32 + 32).
        idx0 = np.arange(0, 64, 2)
        idx1 = np.arange(1, 64, 2)
        l0 = cross_entropy(serial(Tensor(X[idx0])), Y[idx0])
        l1 = cross_entropy(serial(Tensor(X[idx1])), Y[idx1])
        loss = (l0 + l1) * 0.5
        serial.zero_grad()
        loss.backward()
        opt.step()
        for key, value in serial.state_dict().items():
            np.testing.assert_allclose(dist_state[key], value, atol=1e-10)


class TestAccuracyInvariance:
    """The paper's Fig. 3 claim: speed-up 'without loosing accuracy'."""

    def test_final_accuracy_independent_of_worker_count(self):
        from repro.ml.metrics import accuracy

        def fn(comm):
            model, _ = _train(comm, epochs=4)
            return accuracy(model.predict(X), Y)

        accs = {ws: run_spmd(fn, ws)[0] for ws in (1, 2, 4)}
        assert min(accs.values()) > 0.9
        assert max(accs.values()) - min(accs.values()) < 0.05


class TestCompression:
    def test_fp16_halves_wire_bytes(self):
        buf = np.ones(1000)
        assert Fp16Compression().wire_bytes(buf) == \
            NoCompression().wire_bytes(buf) // 4  # float64 -> float16

    def test_fp16_roundtrip_close(self):
        c = Fp16Compression()
        buf = rng.normal(size=100)
        out = c.decompress(c.compress(buf))
        np.testing.assert_allclose(out, buf, atol=1e-2)
        assert out.dtype == np.float64

    def test_fp16_reduces_simulated_traffic(self):
        def fn(comm, compression):
            _, opt = _train(comm, epochs=1, compression=compression)
            return comm.state.bytes_sent

        plain = run_spmd(fn, 2, args=(None,))
        fp16 = run_spmd(fn, 2, args=(Fp16Compression(),))
        assert sum(fp16) < sum(plain) * 0.5


class TestAccounting:
    def test_allreduce_called_once_per_step(self):
        def fn(comm):
            _, opt = _train(comm, epochs=1)
            return opt.allreduce_calls

        calls = run_spmd(fn, 2)[0]
        loader_len = len(DistributedDataLoader(
            ArrayDataset(X, Y), 16, 0, 2))
        assert calls == loader_len

    def test_single_rank_skips_allreduce(self):
        def fn(comm):
            _, opt = _train(comm, epochs=1)
            return opt.allreduce_calls

        assert run_spmd(fn, 1) == [0]

    def test_metric_averaging(self):
        def fn(comm):
            return allreduce_average(comm, float(comm.rank))

        out = run_spmd(fn, 4)
        assert out == [1.5] * 4

    def test_lr_passthrough(self):
        def fn(comm):
            opt = DistributedOptimizer(
                SGD(MLP([2, 2, 2]).parameters(), lr=0.5), comm)
            opt.lr = 0.25
            return opt.lr

        assert run_spmd(fn, 2) == [0.25, 0.25]
