"""The chaos drill end to end: acceptance criteria, determinism, CLI."""

import dataclasses

import pytest

from repro.cli import main
from repro.resilience.chaosdrill import (
    ChaosDrillReport,
    chaos_drill_plan,
    run_chaos_drill,
)


@pytest.fixture(scope="module")
def defended_drill():
    return run_chaos_drill(seed=0, quick=True, defend=True)


@pytest.fixture(scope="module")
def control_drill():
    return run_chaos_drill(seed=0, quick=True, defend=False)


class TestAcceptance:
    def test_zero_admitted_request_loss(self, defended_drill):
        report, _ = defended_drill
        assert report.lost_requests == 0
        assert report.admitted == report.completed

    def test_every_chaos_class_fired(self, defended_drill):
        report, _ = defended_drill
        assert report.partition_windows > 0
        assert report.gray_episodes > 0
        assert report.crashes > 0
        assert report.chaos_delivered

    def test_defenses_visibly_engaged(self, defended_drill):
        report, _ = defended_drill
        assert report.breaker_transitions > 0
        assert report.hedges_issued > 0
        assert report.hedges_backup_won >= 0

    def test_storage_sidecar_went_gray_then_recovered(self, defended_drill):
        report, _ = defended_drill
        # OST loss is a *gray* state: ok but degraded.
        assert report.storage_degraded_ok
        assert "OSTs failed" in report.storage_degraded_detail
        assert report.storage_recovered

    def test_verdict_pass(self, defended_drill):
        report, _ = defended_drill
        assert report.ok
        assert report.to_text().rstrip().endswith("verdict: PASS")


class TestControlArm:
    def test_zero_loss_is_structural_not_a_defense(self, control_drill):
        """Defenses off: the same faults fire, nothing may be lost."""
        report, _ = control_drill
        assert report.chaos_delivered
        assert report.lost_requests == 0

    def test_defense_counters_read_zero(self, control_drill):
        report, _ = control_drill
        assert report.suspicion_events == 0
        assert report.breaker_transitions == 0
        assert report.hedges_issued == 0
        assert report.brownout_path == ()
        assert report.ok

    def test_leaked_defense_activity_fails_control(self, control_drill):
        report, _ = control_drill
        assert not dataclasses.replace(report, hedges_issued=1).ok


class TestDeterminism:
    def test_same_args_byte_identical(self, defended_drill):
        report, prometheus = defended_drill
        report2, prometheus2 = run_chaos_drill(seed=0, quick=True,
                                               defend=True)
        assert report.to_text() == report2.to_text()
        assert prometheus == prometheus2

    def test_plan_is_pure_function_of_seed(self):
        assert chaos_drill_plan(5, 12.0) == chaos_drill_plan(5, 12.0)
        assert chaos_drill_plan(5, 12.0) != chaos_drill_plan(6, 12.0)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_other_seeds_pass(self, seed):
        report, _ = run_chaos_drill(seed=seed, quick=True, defend=True)
        assert report.ok, report.to_text()


class TestVerdictGates:
    """Each gate in ChaosDrillReport.ok is real, not decorative."""

    def _passing(self, defended_drill, **overrides):
        report, _ = defended_drill
        return dataclasses.replace(report, **overrides)

    def test_lost_request_fails(self, defended_drill):
        assert not self._passing(defended_drill, completed=0).ok

    def test_missing_chaos_fails(self, defended_drill):
        assert not self._passing(defended_drill, partition_windows=0).ok
        assert not self._passing(defended_drill, gray_episodes=0).ok
        assert not self._passing(defended_drill, crashes=0).ok

    def test_silent_defenses_fail(self, defended_drill):
        assert not self._passing(defended_drill, breaker_transitions=0).ok
        assert not self._passing(defended_drill, hedges_issued=0).ok

    def test_storage_regression_fails(self, defended_drill):
        assert not self._passing(defended_drill,
                                 storage_degraded_ok=False).ok
        assert not self._passing(defended_drill, storage_recovered=False).ok

    def test_failing_report_renders_fail(self, defended_drill):
        broken = self._passing(defended_drill, completed=0)
        assert broken.to_text().rstrip().endswith("verdict: FAIL")


class TestCli:
    def test_drill_exits_zero_and_writes_artifacts(self, tmp_path):
        out = tmp_path / "drill"
        rc = main(["drill", "chaos", "--quick", "--out", str(out)])
        assert rc == 0
        report = (out / "report.txt").read_text()
        assert "verdict: PASS" in report
        assert "lost: 0" in report
        assert (out / "metrics.prom").read_text()

    def test_no_defend_control_arm_passes(self, tmp_path):
        rc = main(["drill", "chaos", "--quick", "--no-defend",
                   "--out", str(tmp_path / "d")])
        assert rc == 0
        report = (tmp_path / "d" / "report.txt").read_text()
        assert "defenses off" in report

    def test_cli_runs_byte_identical(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        assert main(["drill", "chaos", "--quick", "--out", str(a)]) == 0
        assert main(["drill", "chaos", "--quick", "--out", str(b)]) == 0
        assert (a / "report.txt").read_bytes() == \
            (b / "report.txt").read_bytes()
        assert (a / "metrics.prom").read_bytes() == \
            (b / "metrics.prom").read_bytes()


def test_report_is_frozen(defended_drill):
    report, _ = defended_drill
    assert isinstance(report, ChaosDrillReport)
    with pytest.raises(dataclasses.FrozenInstanceError):
        report.completed = 0
