"""The SDC drill end to end: acceptance criteria, determinism, CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.resilience.drill import (
    KEEP_LAST,
    SdcDrillReport,
    drill_fault_plan,
    run_sdc_drill,
)


@pytest.fixture(scope="module")
def verified_drill():
    return run_sdc_drill(seed=0, quick=True, verify=True)


class TestVerifiedDrill:
    def test_acceptance(self, verified_drill):
        """The headline contract: everything injected was detected, the
        rollback stayed within the retention window, and training ended
        exactly where the fault-free run did."""
        report, _ = verified_drill
        assert report.ok, report.to_text()
        assert report.undetected == 0
        assert report.max_rollback_versions <= KEEP_LAST
        assert report.trajectory_matches_reference
        assert np.isfinite(report.max_loss_deviation)

    def test_every_corruption_class_fired(self, verified_drill):
        report, _ = verified_drill
        injected = dict(report.injected_by_kind)
        assert injected.get("bitflip-message", 0) >= 1
        assert injected.get("bitflip-gradient", 0) >= 1
        assert injected.get("checkpoint-rot", 0) >= 1
        assert report.detected_by_kind == report.injected_by_kind

    def test_offender_quarantined_and_ring_shrunk(self, verified_drill):
        report, _ = verified_drill
        # The plan corrupts world rank 2's gradient; after detection the
        # rank is quarantined through the scheduler and leaves the ring.
        assert 2 in report.quarantined_nodes
        assert report.final_world_size == report.world_size - 1
        assert any(r.reason == "gradient-corruption"
                   for r in report.recoveries)

    def test_scrub_closed_the_books(self, verified_drill):
        report, _ = verified_drill
        assert report.scrub.get("checked", 0) > 0

    def test_report_text_verdict(self, verified_drill):
        report, _ = verified_drill
        text = report.to_text()
        assert "verdict: PASS" in text
        assert "corruption ledger:" in text

    def test_metrics_exposition_carries_ledger(self, verified_drill):
        _, prometheus = verified_drill
        assert "integrity_corruptions_injected" in prometheus
        assert "integrity_corruptions_detected" in prometheus
        assert "integrity_undetected 0" in prometheus


class TestDeterminism:
    def test_same_seed_byte_identical(self, verified_drill):
        report, prometheus = verified_drill
        report2, prometheus2 = run_sdc_drill(seed=0, quick=True, verify=True)
        assert report2.to_text() == report.to_text()
        assert prometheus2 == prometheus

    def test_fault_plan_is_pure_function_of_seed(self):
        assert drill_fault_plan(5, 12) == drill_fault_plan(5, 12)
        assert drill_fault_plan(5, 12) != drill_fault_plan(6, 12)


class TestUnverifiedDrill:
    def test_corruption_visibly_lands(self):
        """--no-verify is the control arm: same seed, same faults, but the
        trajectory must now diverge — proving detection does real work."""
        report, _ = run_sdc_drill(seed=0, quick=True, verify=False)
        assert report.ok, report.to_text()
        assert not report.trajectory_matches_reference
        assert report.injected_total > 0
        assert report.undetected > 0


class TestReportVerdict:
    def _base(self, **kw):
        defaults = dict(
            seed=0, verify=True, n_steps=12, world_size=4,
            injected_by_kind=(("bitflip-message", 3),),
            detected_by_kind=(("bitflip-message", 3),),
            undetected=0.0, max_rollback_versions=1,
            trajectory_matches_reference=True, final_world_size=4)
        defaults.update(kw)
        return SdcDrillReport(**defaults)

    def test_undetected_fails(self):
        assert not self._base(undetected=1.0).ok

    def test_unbounded_rollback_fails(self):
        assert not self._base(max_rollback_versions=KEEP_LAST + 1).ok

    def test_diverged_trajectory_fails(self):
        assert not self._base(trajectory_matches_reference=False).ok

    def test_nothing_injected_fails(self):
        assert not self._base(injected_by_kind=(),
                              detected_by_kind=()).ok


class TestCli:
    def test_drill_exits_zero_and_writes_artifacts(self, tmp_path):
        out = tmp_path / "drill"
        rc = main(["drill", "sdc", "--quick", "--out", str(out)])
        assert rc == 0
        report = (out / "report.txt").read_text()
        assert "verdict: PASS" in report
        assert "integrity_undetected 0" in (out / "metrics.prom").read_text()

    def test_no_verify_control_arm_passes(self, tmp_path):
        rc = main(["drill", "sdc", "--quick", "--no-verify",
                   "--out", str(tmp_path / "d")])
        assert rc == 0

    def test_cli_runs_byte_identical(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        assert main(["drill", "sdc", "--quick", "--out", str(a)]) == 0
        assert main(["drill", "sdc", "--quick", "--out", str(b)]) == 0
        assert (a / "report.txt").read_bytes() == \
            (b / "report.txt").read_bytes()
        assert (a / "metrics.prom").read_bytes() == \
            (b / "metrics.prom").read_bytes()
