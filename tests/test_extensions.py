"""Tests for the extension features beyond the paper's headline systems:

* GRU-D (Che et al., the paper's ref [39]) — decay-based missingness,
* NAM checkpoint/restart (the NAM's origin, ref [12]),
* PFS failure injection (degraded OSTs),
* ZeRO stage 2 (gradient sharding),
* non-blocking receives and ring reduce-scatter in the MPI layer,
* annealer chain-break noise,
* scheduler patience-factor ablation knob.
"""

import numpy as np
import pytest

from repro.datasets import IcuCohort, IcuConfig
from repro.datasets.icu import make_masked_imputation_windows
from repro.distributed import ZeroStage1Optimizer, ZeroStage2Optimizer, broadcast_parameters
from repro.ml import Adam, ArrayDataset, DistributedDataLoader, Tensor, cross_entropy, mae, train_test_split
from repro.ml.metrics import mae_score
from repro.ml.models import GruD, GruDCell, MLP, make_grud_inputs
from repro.mpi import run_spmd
from repro.storage import NetworkAttachedMemory, ParallelFileSystem
from repro.storage.checkpoint import CheckpointError, CheckpointManager, state_nbytes

GiB = 1024 ** 3


# ---------------------------------------------------------------------------
# GRU-D
# ---------------------------------------------------------------------------

class TestGruD:
    def test_grud_inputs_delta_semantics(self):
        values = np.zeros((1, 5, 1))
        mask = np.array([[[1], [0], [0], [1], [0]]], dtype=float)
        _, _, delta = make_grud_inputs(values, mask)
        # delta: time since last observation (0 at t=0, grows while missing).
        np.testing.assert_array_equal(delta[0, :, 0], [0, 1, 2, 3, 1])

    def test_grud_inputs_validation(self):
        with pytest.raises(ValueError):
            make_grud_inputs(np.zeros((2, 3)), np.zeros((2, 3)))
        with pytest.raises(ValueError):
            make_grud_inputs(np.zeros((2, 3, 1)), np.zeros((2, 3, 2)))

    def test_cell_shapes_and_carry(self):
        cell = GruDCell(3, 4, channel_means=np.zeros(3))
        x = Tensor(np.ones((2, 3)))
        m = Tensor(np.array([[1.0, 0.0, 1.0], [0.0, 0.0, 1.0]]))
        d = Tensor(np.ones((2, 3)))
        h0 = Tensor(np.zeros((2, 4)))
        x_last = Tensor(np.full((2, 3), 5.0))
        h, x_last_new = cell(x, m, d, h0, x_last)
        assert h.shape == (2, 4)
        # Observed channels update the carry; unobserved keep the old value.
        assert x_last_new.data[0, 0] == 1.0
        assert x_last_new.data[0, 1] == 5.0

    def test_cell_validates_means(self):
        with pytest.raises(ValueError):
            GruDCell(3, 4, channel_means=np.zeros(2))

    def test_decay_pulls_missing_inputs_toward_mean(self):
        """The homeostasis prior: with everything missing and large δ, the
        imputed input approaches the channel mean."""
        means = np.array([7.0])
        cell = GruDCell(1, 2, channel_means=means)
        # Make the decay fast: w_gamma_x large.
        cell.w_gamma_x.data[:] = 5.0
        x = Tensor(np.zeros((1, 1)))
        m = Tensor(np.zeros((1, 1)))            # unobserved
        x_last = Tensor(np.array([[100.0]]))
        gamma = np.exp(-max(0.0, 5.0 * 10.0))   # δ = 10
        x_hat_expected = gamma * 100.0 + (1 - gamma) * 7.0
        # Recompute through the cell's arithmetic by probing forward parts:
        d = Tensor(np.full((1, 1), 10.0))
        h, _ = cell(x, m, d, Tensor(np.zeros((1, 2))), x_last)
        assert np.isfinite(h.data).all()
        assert x_hat_expected == pytest.approx(7.0, abs=1e-6)

    def test_grud_trains_and_beats_baselines(self):
        records = IcuCohort(IcuConfig(n_patients=20, seed=0, min_hours=30,
                                      max_hours=50,
                                      missing_rate=0.3)).generate()
        X, M, y, _ = make_masked_imputation_windows(records, window=8,
                                                    target_channel=1)
        Xtr, Xte, Mtr, Mte, ytr, yte = train_test_split(
            X, M, y, test_fraction=0.25, seed=0)
        xg, mg, dg = make_grud_inputs(Xtr, Mtr)
        xt, mt, dt = make_grud_inputs(Xte, Mte)
        model = GruD(X.shape[2], hidden=12, seed=0)
        opt = Adam(model.parameters(), lr=5e-3)
        idx = np.arange(len(xg))
        rng = np.random.default_rng(0)
        for _ in range(6):
            rng.shuffle(idx)
            for s in range(0, len(idx), 64):
                b = idx[s:s + 64]
                loss = mae(model(Tensor(xg[b]), Tensor(mg[b]),
                                 Tensor(dg[b])), ytr[b])
                model.zero_grad()
                loss.backward()
                opt.step()
        model.eval()
        grud_mae = mae_score(model.predict(xt, mt, dt), yte)
        from repro.ml.models.gru_forecaster import mean_baseline

        baseline = mae_score(mean_baseline(Xte, 1), yte)
        assert grud_mae < baseline

    def test_grud_gradients_flow(self):
        model = GruD(2, hidden=4, seed=1)
        x = np.random.default_rng(0).normal(size=(3, 5, 2))
        m = np.ones((3, 5, 2))
        xg, mg, dg = make_grud_inputs(x, m)
        loss = mae(model(Tensor(xg), Tensor(mg), Tensor(dg)),
                   np.zeros((3, 1)))
        model.zero_grad()
        loss.backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, name


# ---------------------------------------------------------------------------
# checkpoint/restart (ref [12])
# ---------------------------------------------------------------------------

class TestCheckpointing:
    def _state(self, n=1000):
        rng = np.random.default_rng(0)
        return {"w": rng.normal(size=n), "b": rng.normal(size=10)}

    def test_save_restore_roundtrip_nam(self):
        mgr = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=1))
        state = self._state()
        t_write = mgr.save("model", step=42, state=state)
        restored, step, t_read = mgr.restore("model")
        assert step == 42
        assert t_write > 0 and t_read > 0
        np.testing.assert_array_equal(restored["w"], state["w"])

    def test_save_restore_roundtrip_pfs(self):
        mgr = CheckpointManager(pfs=ParallelFileSystem("fs", n_targets=4),
                                prefer="pfs")
        state = self._state()
        mgr.save("model", step=7, state=state)
        restored, step, _ = mgr.restore("model")
        assert step == 7
        np.testing.assert_array_equal(restored["b"], state["b"])

    def test_overwrite_semantics(self):
        mgr = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=1))
        mgr.save("m", step=1, state=self._state())
        mgr.save("m", step=2, state=self._state())
        _, step, _ = mgr.restore("m")
        assert step == 2

    def test_nam_write_faster_than_pfs(self):
        """The ref [12] claim: NAM accelerates checkpointing."""
        mgr = CheckpointManager(
            nam=NetworkAttachedMemory(capacity_GB=64, write_GBps=8.0),
            pfs=ParallelFileSystem("fs", n_targets=4, target_GBps=5.0))
        comparison = mgr.path_comparison(10 * GiB, concurrent_writers=16)
        assert comparison["nam"] < comparison["pfs"]

    def test_missing_checkpoint(self):
        mgr = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=1))
        with pytest.raises(CheckpointError):
            mgr.restore("ghost")
        with pytest.raises(CheckpointError):
            mgr.drop("ghost")

    def test_drop_releases_nam_space(self):
        nam = NetworkAttachedMemory(capacity_GB=1)
        mgr = CheckpointManager(nam=nam)
        mgr.save("m", step=1, state=self._state(20000))
        used = nam.used_bytes
        assert used > 0
        mgr.drop("m")
        assert nam.used_bytes == 0
        assert not mgr.exists("m")

    def test_requires_target(self):
        with pytest.raises(ValueError):
            CheckpointManager()
        mgr = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=1))
        with pytest.raises(CheckpointError):
            mgr.save("m", step=1, state=self._state(), target="pfs")

    def test_state_nbytes(self):
        assert state_nbytes({"a": np.zeros(10)}) == 80

    def test_training_resume_equivalence(self):
        """Checkpoint mid-training, restore into a fresh model, finish:
        identical weights to the uninterrupted run."""
        rng = np.random.default_rng(1)
        X = rng.normal(size=(40, 2))
        y = (X[:, 0] > 0).astype(int)

        def run_epochs(model, opt, n):
            for _ in range(n):
                loss = cross_entropy(model(Tensor(X)), y)
                model.zero_grad()
                loss.backward()
                opt.step()

        straight = MLP([2, 4, 2], seed=0)
        run_epochs(straight, Adam(straight.parameters(), lr=0.01), 6)

        half = MLP([2, 4, 2], seed=0)
        opt_half = Adam(half.parameters(), lr=0.01)
        run_epochs(half, opt_half, 3)
        mgr = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=1))
        mgr.save("mlp", step=3, state=half.state_dict())

        resumed = MLP([2, 4, 2], seed=99)
        state, step, _ = mgr.restore("mlp")
        resumed.load_state_dict(state)
        # NOTE: Adam moments are part of real checkpoints; restarting the
        # optimiser resets them, so allow a small tolerance.
        run_epochs(resumed, Adam(resumed.parameters(), lr=0.01), 3)
        for (k, a), (_, b) in zip(sorted(straight.state_dict().items()),
                                  sorted(resumed.state_dict().items())):
            np.testing.assert_allclose(a, b, atol=0.05)


# ---------------------------------------------------------------------------
# PFS failure injection
# ---------------------------------------------------------------------------

class TestPfsFailureInjection:
    def test_degraded_reads_slower(self):
        pfs = ParallelFileSystem("fs", n_targets=8)
        f = pfs.create("/data", 10 * GiB, stripe_count=8)
        healthy = pfs.read_time(f)
        pfs.fail_target(f.layout.first_target)
        degraded = pfs.read_time(f)
        assert degraded == pytest.approx(healthy * pfs.degraded_factor)

    def test_unaffected_files_keep_speed(self):
        pfs = ParallelFileSystem("fs", n_targets=8)
        narrow = pfs.create("/narrow", GiB, stripe_count=1)
        t_before = pfs.read_time(narrow)
        # Fail an OST the narrow file does not touch.
        victim = (narrow.layout.first_target + 4) % 8
        pfs.fail_target(victim)
        assert pfs.read_time(narrow) == pytest.approx(t_before)

    def test_recovery_restores_speed(self):
        pfs = ParallelFileSystem("fs", n_targets=4)
        f = pfs.create("/x", GiB, stripe_count=4)
        base = pfs.read_time(f)
        pfs.fail_target(0)
        assert not pfs.healthy
        pfs.recover_target(0)
        assert pfs.healthy
        assert pfs.read_time(f) == pytest.approx(base)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            ParallelFileSystem("fs", n_targets=4).fail_target(9)


# ---------------------------------------------------------------------------
# ZeRO stage 2
# ---------------------------------------------------------------------------

class TestZeroStage2:
    def _train(self, comm, cls):
        rng = np.random.default_rng(0)
        X = np.concatenate([rng.normal(-2, 1, (48, 2)),
                            rng.normal(2, 1, (48, 2))])
        Y = np.array([0] * 48 + [1] * 48)
        model = MLP([2, 8, 2], seed=3)
        broadcast_parameters(model, comm)
        opt = cls(model.parameters(), comm, lr=0.01)
        loader = DistributedDataLoader(ArrayDataset(X, Y), 12, comm.rank,
                                       comm.size, seed=1)
        for epoch in range(2):
            loader.set_epoch(epoch)
            for xb, yb in loader:
                loss = cross_entropy(model(Tensor(xb)), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
        return model.state_dict(), opt

    @pytest.mark.parametrize("ws", [1, 2, 4])
    def test_stage2_matches_stage1(self, ws):
        s1 = run_spmd(lambda c: self._train(c, ZeroStage1Optimizer)[0], ws)[0]
        s2 = run_spmd(lambda c: self._train(c, ZeroStage2Optimizer)[0], ws)[0]
        for key in s1:
            np.testing.assert_allclose(s1[key], s2[key], atol=1e-9)

    def test_stage2_shards_gradient_memory(self):
        def fn(comm):
            _, opt = self._train(comm, ZeroStage2Optimizer)
            return opt.grad_memory_saving_factor

        factors = run_spmd(fn, 4)
        assert min(factors) > 3.0   # ~1/4 of the fused gradient per rank

    def test_stage2_replicas_identical(self):
        states = run_spmd(lambda c: self._train(c, ZeroStage2Optimizer)[0], 4)
        for state in states[1:]:
            for key in states[0]:
                np.testing.assert_allclose(states[0][key], state[key],
                                           atol=1e-12)


# ---------------------------------------------------------------------------
# MPI additions: irecv + reduce_scatter
# ---------------------------------------------------------------------------

class TestMpiAdditions:
    def test_irecv_wait(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=9)
                return req.wait()
            comm.send("payload", dest=0, tag=9)

        assert run_spmd(fn, 2)[0] == "payload"

    def test_irecv_test_polls(self):
        def fn(comm):
            if comm.rank == 0:
                req = comm.irecv(source=1, tag=2)
                done, value = req.test()
                attempts = 0
                while not done:
                    attempts += 1
                    done, value = req.test()
                return value

            comm.compute(0.0)
            comm.send(123, dest=0, tag=2)

        assert run_spmd(fn, 2)[0] == 123

    @pytest.mark.parametrize("ws", [1, 2, 4, 5])
    def test_reduce_scatter_chunks_reassemble_to_sum(self, ws):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(ws, 64))
        expected = data.sum(axis=0)

        def fn(comm):
            chunk, bounds = comm.reduce_scatter(data[comm.rank].copy())
            return bounds, chunk

        out = run_spmd(fn, ws)
        rebuilt = np.empty(64)
        covered = 0
        for (lo, hi), chunk in out:
            rebuilt[lo:hi] = chunk
            covered += hi - lo
        assert covered == 64
        np.testing.assert_allclose(rebuilt, expected, rtol=1e-12)


# ---------------------------------------------------------------------------
# annealer chain-break noise
# ---------------------------------------------------------------------------

class TestChainBreakNoise:
    def test_noise_degrades_best_energy(self):
        from repro.quantum import Qubo, SimulatedQuantumAnnealer, DWAVE_2000Q

        rng = np.random.default_rng(2)
        Q = rng.normal(size=(24, 24))   # dense: chains required
        clean = SimulatedQuantumAnnealer.for_device(DWAVE_2000Q, sweeps=60)
        noisy = SimulatedQuantumAnnealer.for_device(DWAVE_2000Q, sweeps=60)
        noisy.chain_break_prob_per_qubit = 0.08
        e_clean = clean.sample(Qubo(Q), num_reads=12, seed=0).best_energy
        e_noisy = noisy.sample(Qubo(Q), num_reads=12, seed=0).best_energy
        assert e_noisy >= e_clean

    def test_zero_noise_is_default_and_deterministic(self):
        from repro.quantum import Qubo, SimulatedQuantumAnnealer, DWAVE_2000Q

        ann = SimulatedQuantumAnnealer.for_device(DWAVE_2000Q, sweeps=40)
        assert ann.chain_break_prob_per_qubit == 0.0
        Q = np.diag([-1.0, -1.0, 2.0])
        a = ann.sample(Qubo(Q), num_reads=5, seed=1)
        b = ann.sample(Qubo(Q), num_reads=5, seed=1)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_invalid_probability(self):
        from repro.quantum import SimulatedQuantumAnnealer

        with pytest.raises(ValueError):
            SimulatedQuantumAnnealer(chain_break_prob_per_qubit=1.5)


# ---------------------------------------------------------------------------
# scheduler patience ablation knob
# ---------------------------------------------------------------------------

class TestPatienceKnob:
    def test_patience_configurable(self):
        from repro.core import MsaScheduler, deep_system

        sched = MsaScheduler(deep_system(), patience_factor=10.0)
        assert sched.PATIENCE_FACTOR == 10.0

    def test_invalid_patience(self):
        from repro.core import MsaScheduler, deep_system

        with pytest.raises(ValueError):
            MsaScheduler(deep_system(), patience_factor=0.5)

    def test_patience_tolerance_changes_placements(self):
        """The factor is a tolerance: 1.0 = refuse anything worse than the
        best module (wait for it), huge = take whatever is free now —
        measurably different schedules under contention."""
        from repro.core import (
            BoosterModule, ClusterModule, Job, JobPhase, MSASystem,
            MsaScheduler, WorkloadClass, DEEP_CM_NODE, DEEP_ESB_NODE,
        )

        def system():
            sys = MSASystem("tiny")
            sys.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, 4))
            sys.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, 2))
            return sys

        def jobs():
            return [Job(name=f"g{i}", phases=[JobPhase(
                name="train", workload=WorkloadClass.ML_TRAINING,
                work_flops=1e16, nodes=2, uses_gpu=True,
                parallel_fraction=0.99)]) for i in range(4)]

        strict = MsaScheduler(system(), patience_factor=1.0)
        strict.submit_all(jobs())
        strict_mods = {a.module_key for a in strict.run().allocations}

        eager = MsaScheduler(system(), patience_factor=1e9)
        eager.submit_all(jobs())
        eager_mods = {a.module_key for a in eager.run().allocations}

        assert strict_mods == {"esb"}
        assert "cm" in eager_mods


# ---------------------------------------------------------------------------
# scale-out inference (CM-train / ESB-infer)
# ---------------------------------------------------------------------------

class TestDistributedInference:
    def _model_and_data(self):
        rng = np.random.default_rng(0)
        X = np.concatenate([rng.normal(-2, 1, (60, 2)),
                            rng.normal(2, 1, (60, 2))])
        y = np.array([0] * 60 + [1] * 60)
        model = MLP([2, 8, 2], seed=0)
        opt = Adam(model.parameters(), lr=0.02)
        for _ in range(40):
            loss = cross_entropy(model(Tensor(X)), y)
            model.zero_grad()
            loss.backward()
            opt.step()
        return model, X, y

    def test_shard_bounds_partition(self):
        from repro.distributed import shard_bounds

        for n in (0, 1, 7, 100):
            for world in (1, 3, 8):
                spans = [shard_bounds(n, r, world) for r in range(world)]
                assert spans[0][0] == 0 and spans[-1][1] == n
                for (a_lo, a_hi), (b_lo, _) in zip(spans, spans[1:]):
                    assert a_hi == b_lo
        with pytest.raises(ValueError):
            shard_bounds(5, 3, 3)

    @pytest.mark.parametrize("ws", [1, 2, 3, 4])
    def test_distributed_predictions_match_serial(self, ws):
        from repro.distributed import distributed_predict

        model, X, y = self._model_and_data()
        serial = model.predict(X)

        def fn(comm):
            return distributed_predict(comm, model.predict, X, batch_size=16)

        for out in run_spmd(fn, ws):
            np.testing.assert_array_equal(out, serial)

    @pytest.mark.parametrize("ws", [1, 2, 4])
    def test_distributed_evaluation_exact(self, ws):
        from repro.distributed import distributed_evaluate
        from repro.ml.metrics import accuracy, confusion_matrix

        model, X, y = self._model_and_data()
        serial_acc = accuracy(model.predict(X), y)
        serial_cm = confusion_matrix(model.predict(X), y, 2)

        def fn(comm):
            return distributed_evaluate(comm, model.predict, X, y,
                                        n_classes=2, batch_size=16)

        for result in run_spmd(fn, ws):
            assert result["accuracy"] == pytest.approx(serial_acc)
            np.testing.assert_array_equal(result["confusion_matrix"],
                                          serial_cm)
            assert result["n_samples"] == len(y)

    def test_scaleout_time_model_keeps_scaling(self):
        from repro.distributed import inference_scaleout_time

        times = [inference_scaleout_time(100_000, per_sample_s=1e-4,
                                         n_ranks=p)
                 for p in (1, 8, 64)]
        assert times[0] > times[1] > times[2]
        with pytest.raises(ValueError):
            inference_scaleout_time(10, 1e-4, 0)
