"""End-to-end case studies: the paper's experiments at laptop scale.

These integration tests run the actual pipelines the benchmarks report on —
distributed ResNet training on synthetic BigEarthNet (E3), COVID-Net on
synthetic COVIDx (E7), the ARDS GRU vs 1-D CNN vs clinical baselines (E8),
and the Spark autoencoder pipeline on DAM memory (E5).
"""

import numpy as np
import pytest

from repro.datasets import (
    BigEarthNetConfig,
    CxrConfig,
    IcuCohort,
    IcuConfig,
    SyntheticBigEarthNet,
    SyntheticCovidx,
    make_imputation_windows,
)
from repro.distributed import DistributedOptimizer, broadcast_parameters
from repro.ml import (
    Adam,
    ArrayDataset,
    DistributedDataLoader,
    SGD,
    Tensor,
    cross_entropy,
    mae,
    train_test_split,
)
from repro.ml.metrics import accuracy, mae_score, precision_recall_f1
from repro.ml.models import CovidNet, Cnn1dForecaster, GruForecaster, resnet_small
from repro.ml.models.gru_forecaster import locf_baseline, mean_baseline
from repro.mpi import run_spmd


# ---------------------------------------------------------------------------
# E3: distributed land-cover training — accuracy invariant in worker count
# ---------------------------------------------------------------------------

class TestRemoteSensingDistributedTraining:
    N_CLASSES = 4

    @pytest.fixture(scope="class")
    def data(self):
        ds = SyntheticBigEarthNet(BigEarthNetConfig(
            n_samples=160, patch_size=8, n_classes=self.N_CLASSES,
            noise_sigma=0.02, seed=0))
        X, y = ds.generate()
        return train_test_split(X, y, test_fraction=0.25, seed=0)

    def _train(self, comm, Xtr, ytr, epochs=25):
        model = resnet_small(in_channels=12, n_classes=self.N_CLASSES,
                             seed=0)
        broadcast_parameters(model, comm)
        opt = DistributedOptimizer(Adam(model.parameters(), lr=3e-3), comm)
        # Constant global batch (the linear-scaling regime): per-rank batch
        # shrinks as workers grow, so optimisation dynamics stay comparable.
        loader = DistributedDataLoader(ArrayDataset(Xtr, ytr),
                                       batch_size=max(1, 40 // comm.size),
                                       rank=comm.rank, world_size=comm.size,
                                       seed=1)
        for epoch in range(epochs):
            loader.set_epoch(epoch)
            for xb, yb in loader:
                loss = cross_entropy(model(Tensor(xb)), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
        return model

    def test_accuracy_flat_across_gpu_counts(self, data):
        """Fig. 3: 'significantly reduce the training time without
        affecting prediction accuracy'."""
        Xtr, Xte, ytr, yte = data

        def fn(comm):
            model = self._train(comm, Xtr, ytr)
            return accuracy(model.predict(Xte), yte)

        accs = {ws: run_spmd(fn, ws, timeout=600)[0] for ws in (1, 2, 4)}
        chance = 1.0 / self.N_CLASSES
        for ws, acc in accs.items():
            assert acc > chance + 0.3, f"ws={ws} did not learn: {acc}"
        assert max(accs.values()) - min(accs.values()) < 0.15

    def test_simulated_time_reflects_parallel_speedup(self, data):
        """With modelled per-step compute, more workers finish an epoch in
        less simulated time despite allreduce overhead."""
        Xtr, _, ytr, _ = data
        step_compute = 0.05

        def fn(comm):
            model = resnet_small(in_channels=12, n_classes=self.N_CLASSES)
            broadcast_parameters(model, comm)
            opt = DistributedOptimizer(SGD(model.parameters(), lr=0.01), comm)
            loader = DistributedDataLoader(ArrayDataset(Xtr, ytr), 20,
                                           comm.rank, comm.size, seed=1)
            for xb, yb in loader:
                comm.compute(step_compute)
                loss = cross_entropy(model(Tensor(xb)), yb)
                opt.zero_grad()
                loss.backward()
                opt.step()
            return comm.sim_time

        t1 = max(run_spmd(fn, 1, timeout=600))
        t4 = max(run_spmd(fn, 4, timeout=600))
        assert t4 < t1 / 2


# ---------------------------------------------------------------------------
# E7: COVID-Net on synthetic COVIDx
# ---------------------------------------------------------------------------

class TestCovidNetCaseStudy:
    @pytest.fixture(scope="class")
    def trained(self):
        gen = SyntheticCovidx(CxrConfig(n_samples=240, image_size=32,
                                        noise_sigma=0.02, seed=0))
        X, y = gen.generate()
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25,
                                              seed=0)
        model = CovidNet(base_width=8, n_blocks=2, seed=0)
        opt = Adam(model.parameters(), lr=3e-3)
        loader_idx = np.arange(len(Xtr))
        rng = np.random.default_rng(0)
        for epoch in range(25):
            rng.shuffle(loader_idx)
            for start in range(0, len(loader_idx), 32):
                batch = loader_idx[start:start + 32]
                loss = cross_entropy(model(Tensor(Xtr[batch])), ytr[batch])
                model.zero_grad()
                loss.backward()
                opt.step()
        return model, gen, (Xte, yte)

    def test_detects_covid_from_cxr(self, trained):
        model, _, (Xte, yte) = trained
        acc = accuracy(model.predict(Xte), yte)
        assert acc > 0.7, f"COVID-Net accuracy too low: {acc}"

    def test_covid_recall_reasonable(self, trained):
        """Screening use demands sensitivity on the COVID class."""
        model, _, (Xte, yte) = trained
        scores = precision_recall_f1(model.predict(Xte), yte, 3)
        assert scores["recall"][2] > 0.5

    def test_generalises_to_external_hospital(self, trained):
        """Sec. IV-A: 'validate that Covid-Net is able to generalize well
        to unseen datasets' (the pharma-collaboration set)."""
        model, gen, _ = trained
        Xe, ye = gen.generate_external_validation(90)
        acc = accuracy(model.predict(Xe), ye)
        assert acc > 0.55


# ---------------------------------------------------------------------------
# E8: ARDS time-series missing-value prediction
# ---------------------------------------------------------------------------

class TestArdsCaseStudy:
    TARGET = 1  # SpO2

    @pytest.fixture(scope="class")
    def windows(self):
        cohort = IcuCohort(IcuConfig(n_patients=30, seed=0,
                                     min_hours=30, max_hours=60))
        records = cohort.generate()
        X, y, stats = make_imputation_windows(records, window=8,
                                              target_channel=self.TARGET)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25,
                                              seed=0)
        return Xtr, Xte, ytr, yte

    def _fit(self, model, Xtr, ytr, lr, epochs=10):
        opt = Adam(model.parameters(), lr=lr)
        idx = np.arange(len(Xtr))
        rng = np.random.default_rng(0)
        for _ in range(epochs):
            rng.shuffle(idx)
            for start in range(0, len(idx), 64):
                batch = idx[start:start + 64]
                loss = mae(model(Tensor(Xtr[batch])), ytr[batch])
                model.zero_grad()
                loss.backward()
                opt.step()
        model.eval()
        return model

    def test_gru_beats_clinical_baselines(self, windows):
        Xtr, Xte, ytr, yte = windows
        model = self._fit(GruForecaster(Xtr.shape[2], hidden=16, seed=0),
                          Xtr, ytr, lr=5e-3)
        gru_mae = mae_score(model.predict(Xte), yte)
        locf_mae = mae_score(locf_baseline(Xte, self.TARGET), yte)
        mean_mae = mae_score(mean_baseline(Xte, self.TARGET), yte)
        assert gru_mae < locf_mae
        assert gru_mae < mean_mae

    def test_cnn1d_also_promising(self, windows):
        """The paper: 'One-Dimensional CNN as promising method as well as
        GRUs for predicting missing values'."""
        Xtr, Xte, ytr, yte = windows
        model = self._fit(Cnn1dForecaster(Xtr.shape[2], channels=16, seed=0),
                          Xtr, ytr, lr=5e-3)
        cnn_mae = mae_score(model.predict(Xte), yte)
        mean_mae = mae_score(mean_baseline(Xte, self.TARGET), yte)
        assert cnn_mae < mean_mae

    def test_paper_hyperparameters_run(self, windows):
        """The exact Sec. IV-B configuration trains without issue:
        2x GRU(32), dropout 0.2, MAE loss, Adam lr=1e-4."""
        Xtr, Xte, ytr, yte = windows
        model = GruForecaster(Xtr.shape[2])          # 32 units, dropout 0.2
        opt = Adam(model.parameters(), lr=1e-4)      # paper's LR
        loss0 = mae(model(Tensor(Xtr[:64])), ytr[:64]).item()
        for _ in range(8):
            loss = mae(model(Tensor(Xtr[:64])), ytr[:64])
            model.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < loss0


# ---------------------------------------------------------------------------
# E5: Spark-style autoencoder compression on DAM memory
# ---------------------------------------------------------------------------

class TestSparkAutoencoderPipeline:
    def test_rdd_pipeline_trains_autoencoder(self):
        from repro.analytics import MiniSparkContext
        from repro.ml.models import SpectralAutoencoder
        from repro.ml import mse

        ds = SyntheticBigEarthNet(BigEarthNetConfig(n_classes=6, seed=1))
        spectra, _ = ds.pixels(600)
        ctx = MiniSparkContext(n_partitions=4)
        rows = ctx.parallelize(list(spectra)).cache()

        ae = SpectralAutoencoder(n_bands=12, bottleneck=3, hidden=16, seed=0)
        opt = Adam(ae.parameters(), lr=5e-3)
        before = ae.reconstruction_error(spectra)
        for _ in range(30):
            # treeAggregate-style: partitions contribute batch gradients.
            batch = np.asarray(rows.take(256))
            loss = mse(ae(Tensor(batch)), batch)
            ae.zero_grad()
            loss.backward()
            opt.step()
        after = ae.reconstruction_error(spectra)
        assert after < before / 5
        assert ctx.cached_fast_fraction() == pytest.approx(1.0)

    def test_compression_preserves_class_structure(self):
        """Compressed spectra must still separate land-cover classes."""
        from repro.ml.models import SpectralAutoencoder
        from repro.ml import mse

        ds = SyntheticBigEarthNet(BigEarthNetConfig(
            n_classes=3, seed=2, noise_sigma=0.01))
        spectra, labels = ds.pixels(500)
        ae = SpectralAutoencoder(n_bands=12, bottleneck=2, hidden=16, seed=0)
        opt = Adam(ae.parameters(), lr=5e-3)
        for _ in range(80):
            loss = mse(ae(Tensor(spectra)), spectra)
            ae.zero_grad()
            loss.backward()
            opt.step()
        ae.eval()
        Z = ae.encode(Tensor(spectra)).data
        # Nearest-centroid classification in latent space.
        centroids = np.stack([Z[labels == c].mean(axis=0) for c in range(3)])
        d = ((Z[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        acc = accuracy(d.argmin(axis=1), labels)
        assert acc > 0.85
