"""Data pipeline (incl. the Horovod-style distributed sampler) and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ml import (
    ArrayDataset,
    DataLoader,
    DistributedDataLoader,
    DistributedSampler,
    train_test_split,
)
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    mae_score,
    multilabel_micro_f1,
    precision_recall_f1,
    r2_score,
    rmse_score,
    subset_accuracy,
)


class TestDataset:
    def test_parallel_arrays(self):
        ds = ArrayDataset(np.arange(10), np.arange(10) * 2)
        x, y = ds[3]
        assert (x, y) == (3, 6)
        assert len(ds) == 10

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.arange(3), np.arange(4))

    def test_batch_indexing(self):
        ds = ArrayDataset(np.arange(10))
        (batch,) = ds[np.array([1, 3])]
        np.testing.assert_array_equal(batch, [1, 3])


class TestDataLoader:
    def test_batches_cover_dataset(self):
        ds = ArrayDataset(np.arange(10))
        loader = DataLoader(ds, batch_size=3, shuffle=False)
        seen = np.concatenate([b[0] for b in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))
        assert len(loader) == 4

    def test_drop_last(self):
        loader = DataLoader(ArrayDataset(np.arange(10)), 3, shuffle=False,
                            drop_last=True)
        assert len(loader) == 3

    def test_shuffle_deterministic_per_epoch(self):
        ds = ArrayDataset(np.arange(100))
        a = DataLoader(ds, 10, seed=5)
        b = DataLoader(ds, 10, seed=5)
        assert all(
            np.array_equal(x[0], y[0]) for x, y in zip(a, b)
        )

    def test_epochs_reshuffle(self):
        ds = ArrayDataset(np.arange(100))
        loader = DataLoader(ds, 100, seed=5)
        first = next(iter(loader))[0].copy()
        loader.set_epoch(1)
        second = next(iter(loader))[0]
        assert not np.array_equal(first, second)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(ArrayDataset(np.arange(3)), 0)


class TestDistributedSampler:
    def test_shards_are_disjoint_and_cover(self):
        n, p = 103, 4
        samplers = [DistributedSampler(n, r, p, seed=1) for r in range(p)]
        shards = [s.indices() for s in samplers]
        union = np.concatenate(shards)
        assert set(union.tolist()) == set(range(n))   # full coverage
        # Each pair disjoint up to the wrap-padding duplicates.
        lengths = [len(s) for s in shards]
        assert len(set(lengths)) == 1                  # equal sizes

    def test_equal_batches_across_ranks(self):
        ds = ArrayDataset(np.arange(101))
        loaders = [DistributedDataLoader(ds, 8, r, 4) for r in range(4)]
        assert len({len(ld) for ld in loaders}) == 1

    @given(n=st.integers(min_value=2, max_value=500),
           p=st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_property_coverage_and_balance(self, n, p):
        shards = [DistributedSampler(n, r, p, seed=0).indices()
                  for r in range(p)]
        union = set(np.concatenate(shards).tolist())
        assert union == set(range(n))
        sizes = {len(s) for s in shards}
        assert len(sizes) == 1

    @given(n=st.integers(min_value=8, max_value=200),
           p=st.integers(min_value=2, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_property_no_overlap_without_padding(self, p, n):
        # When p divides n there is no padding, so shards are disjoint.
        n = (n // p) * p
        if n == 0:
            return
        shards = [set(DistributedSampler(n, r, p, seed=0).indices().tolist())
                  for r in range(p)]
        for i in range(p):
            for j in range(i + 1, p):
                assert not (shards[i] & shards[j])

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            DistributedSampler(10, rank=4, world_size=4)

    def test_epoch_changes_order_not_coverage(self):
        s = DistributedSampler(40, 0, 2, seed=0)
        e0 = s.indices().copy()
        s.set_epoch(1)
        e1 = s.indices()
        assert not np.array_equal(e0, e1)


class TestSplit:
    def test_fractions(self):
        X = np.arange(100)
        y = np.arange(100) * 2
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_fraction=0.25, seed=0)
        assert len(Xte) == 25 and len(Xtr) == 75
        # Pairing preserved.
        np.testing.assert_array_equal(ytr, Xtr * 2)

    def test_disjoint(self):
        X = np.arange(50)
        Xtr, Xte = train_test_split(X, test_fraction=0.2, seed=1)
        assert not (set(Xtr.tolist()) & set(Xte.tolist()))

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), test_fraction=0.0)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 0])) == \
            pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 0]), 2)
        np.testing.assert_array_equal(cm, [[1, 1], [0, 1]])

    def test_precision_recall_f1_perfect(self):
        y = np.array([0, 1, 2, 1])
        out = precision_recall_f1(y, y, 3)
        np.testing.assert_allclose(out["f1"], 1.0)

    def test_precision_recall_zero_safe(self):
        out = precision_recall_f1(np.array([0, 0]), np.array([1, 1]), 2)
        assert out["precision"][1] == 0.0
        assert out["recall"][0] == 0.0

    def test_multilabel_micro_f1(self):
        pred = np.array([[1, 0], [1, 1]])
        true = np.array([[1, 0], [0, 1]])
        # tp=2, fp=1, fn=0 -> f1 = 4/5
        assert multilabel_micro_f1(pred, true) == pytest.approx(0.8)

    def test_subset_accuracy(self):
        pred = np.array([[1, 0], [1, 1]])
        true = np.array([[1, 0], [0, 1]])
        assert subset_accuracy(pred, true) == pytest.approx(0.5)

    def test_regression_scores(self):
        pred = np.array([1.0, 2.0, 3.0])
        true = np.array([1.0, 2.0, 5.0])
        assert mae_score(pred, true) == pytest.approx(2 / 3)
        assert rmse_score(pred, true) == pytest.approx(np.sqrt(4 / 3))

    def test_masked_regression_scores(self):
        pred = np.array([1.0, 100.0])
        true = np.array([0.0, 0.0])
        mask = np.array([True, False])
        assert mae_score(pred, true, mask) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            mae_score(pred, true, np.array([False, False]))

    def test_r2(self):
        true = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(true, true) == pytest.approx(1.0)
        assert r2_score(np.full(4, true.mean()), true) == pytest.approx(0.0)
        assert r2_score(-true, true) < 0.0
