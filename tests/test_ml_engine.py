"""The lazy tensor engine: graph recording, fusion, devices, stats.

Covers the machinery under ``ENGINE=lazy`` — :class:`LazyExpr` recording
and realization, the fuser's chain-collapsing rules, the shared fused
executor's buffer reuse, the device registry and both backend cost
models, engine counters and per-kernel telemetry spans.  Bit-identity of
lazy vs eager *outputs* is pinned in ``test_perf_regression_pins.py``;
here we test the engine's own contracts.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.ml import engine
from repro.ml.engine import (LazyExpr, collect, engine_mode, get_device,
                             schedule, set_engine, use_device)
from repro.ml.engine.cpu import CpuDevice, execute_kernel
from repro.ml.engine.ops import OPS
from repro.ml.tensor import Tensor


@pytest.fixture(autouse=True)
def _eager_after():
    yield
    set_engine("eager")


class TestModeSwitch:
    def test_default_is_eager(self):
        assert engine_mode() == "eager"

    def test_context_manager_restores(self):
        with engine.engine("lazy"):
            assert engine_mode() == "lazy"
        assert engine_mode() == "eager"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            set_engine("jit")

    def test_env_var_validation(self):
        from repro.ml.engine import _mode_from_env
        import os
        os.environ["ENGINE"] = "bogus"
        try:
            with pytest.raises(ValueError):
                _mode_from_env()
        finally:
            del os.environ["ENGINE"]


class TestLazyExpr:
    def test_ops_stay_unrealized_until_demanded(self):
        with engine.engine("lazy"):
            x = Tensor(np.ones((4, 4)))
            y = (x * 2.0 + 1.0).tanh()
            assert not y.realized
            assert y.shape == (4, 4)          # shape known without bytes
            assert y.dtype == np.float64
            _ = y.data
            assert y.realized

    def test_shape_and_dtype_inference(self):
        with engine.engine("lazy"):
            a = Tensor(np.ones((3, 1), dtype=np.float32))
            b = Tensor(np.ones((1, 5)))
            assert (a + b).shape == (3, 5)
            assert (a + b).dtype == np.float64
            assert (a * 2.0).dtype == np.float32
            assert a.sum(axis=0).shape == (1,)
            assert a.sum(axis=0, keepdims=True).shape == (1, 1)
            m = Tensor(np.ones((2, 3, 4)))
            assert (m @ Tensor(np.ones((4, 5)))).shape == (2, 3, 5)
            assert m.transpose(2, 0, 1).shape == (4, 2, 3)
            assert m.reshape(6, -1).shape == (6, 4)

    def test_leaf_is_born_realized(self):
        leaf = LazyExpr.leaf(np.ones(3))
        assert leaf.result is not None
        assert leaf.shape == (3,)

    def test_realize_is_cached(self):
        with engine.engine("lazy"):
            x = Tensor(np.ones(8))
            y = x * 2.0
            first = y.data
            assert y.data is first


class TestFuser:
    def _graph(self, n=8):
        x = Tensor(np.ones((n, n)))
        w = Tensor(np.ones((n, n)))
        return ((x @ w + 1.0) * 2.0).relu().sum()

    def test_elementwise_chain_fuses_into_one_kernel(self):
        with engine.engine("lazy"):
            y = self._graph()
            kernels = schedule(y._payload())
        # matmul is its own kernel; add+mul+relu+sum fuse.
        assert len(kernels) == 2
        assert kernels[0].name == "matmul"
        assert kernels[1].name == "add+mul+relu+sum"

    def test_multi_consumer_node_is_not_fused(self):
        with engine.engine("lazy"):
            x = Tensor(np.ones(16))
            h = x * 2.0                        # two consumers
            y = (h + 1.0) * (h - 3.0)
            kernels = schedule(y._payload())
        names = [k.name for k in kernels]
        # h stands alone (its kernel runs first); neither consumer chain
        # swallowed it.
        assert names[0] == "mul"
        assert all(not n.startswith("mul+") for n in names)

    def test_kernels_execute_in_dependency_order(self):
        with engine.engine("lazy"):
            y = self._graph(4)
            assert float(y.data) == float(
                (((np.ones((4, 4)) @ np.ones((4, 4))) + 1.0) * 2.0).sum())

    def test_fused_interior_recomputes_for_backward(self):
        with engine.engine("lazy"):
            x = Tensor(np.full((8,), 0.3), requires_grad=True)
            y = (x * 2.0).tanh().sum()
            with collect() as stats:
                y.backward()
                assert stats.recomputes >= 1
            ref = 2.0 * (1.0 - np.tanh(np.full((8,), 0.3) * 2.0) ** 2)
            np.testing.assert_array_equal(x.grad, ref)

    def test_kernel_accounting(self):
        with engine.engine("lazy"):
            y = self._graph(8)
            kernels = schedule(y._payload())
        fused = kernels[1]
        assert fused.n_ops == 4
        assert fused.flops > 0
        assert fused.bytes_moved > 0


class TestExecutorBufferReuse:
    def test_chain_allocates_once_per_kernel_output(self):
        with engine.engine("lazy"):
            with collect() as stats:
                x = Tensor(np.ones((64, 64)))
                ((x * 2.0 + 1.0).tanh().relu()).data
            # 4 fused elementwise ops, 1 materialized buffer.
            assert stats.kernels == 1
            assert stats.kernel_allocs == 1

    def test_leaf_buffers_never_reused(self):
        with engine.engine("lazy"):
            arr = np.ones(32)
            x = Tensor(arr)
            (x * 3.0 + 1.0).data
            np.testing.assert_array_equal(arr, np.ones(32))

    def test_mixed_dtype_chain_does_not_reuse_mismatched_buffer(self):
        with engine.engine("lazy"):
            a = Tensor(np.ones(16, dtype=np.float32))
            b = Tensor(np.ones(16))
            out = ((a * 2.0) + b).data        # f32 temp, f64 output
            assert out.dtype == np.float64
            np.testing.assert_array_equal(out, np.full(16, 3.0))

    def test_scalar_reduction_output_is_ndarray(self):
        with engine.engine("lazy"):
            x = Tensor(np.ones(8))
            total = (x.sum() * 2.0 + 1.0)
            assert isinstance(total.data, np.ndarray)
            assert float(total.data) == 17.0


class TestDevices:
    def test_registry_lists_builtins(self):
        names = engine.device_names()
        assert {"cpu", "sim-gpu", "sim-gpu:v100"} <= set(names)

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            get_device("tpu")

    def test_use_device_restores_previous(self):
        before = engine.current_device_name()
        with use_device("sim-gpu"):
            assert engine.current_device_name() == "sim-gpu"
        assert engine.current_device_name() == before

    def test_register_custom_backend(self):
        class Half(CpuDevice):
            name = "cpu-half"

        engine.register_device("cpu-half", Half)
        assert isinstance(get_device("cpu-half"), Half)
        assert "cpu-half" in engine.device_names()

    def test_cpu_clock_advances_per_kernel(self):
        dev = CpuDevice()
        with engine.engine("lazy"):
            x = Tensor(np.ones((32, 32)))
            expr = ((x * 2.0).tanh().sum())._payload()
            dev.realize(expr)
        assert dev.kernels_run == 1
        assert dev.sim_time_s > 0

    def test_simgpu_charges_roofline_per_fused_kernel(self):
        from repro.distributed.perfmodel import KernelCostModel

        dev = get_device("sim-gpu")
        cm = dev.cost_model
        assert isinstance(cm, KernelCostModel)
        t = dev.kernel_time_s(1e9, 10**6, 3)
        assert t == pytest.approx(cm.kernel_time(1e9, 10**6))
        # Launch overhead dominates tiny kernels: fusing N ops into one
        # kernel beats N launches.
        tiny = dev.kernel_time_s(100.0, 800, 1)
        assert 3 * tiny > dev.kernel_time_s(300.0, 2400, 3)

    def test_v100_slower_than_a100(self):
        a100 = get_device("sim-gpu")
        v100 = get_device("sim-gpu:v100")
        flops, nbytes = 1e10, 10**8
        assert v100.kernel_time_s(flops, nbytes, 1) \
            > a100.kernel_time_s(flops, nbytes, 1)

    def test_unfused_counterfactual_is_slower(self):
        dev = get_device("sim-gpu")
        with engine.engine("lazy"):
            x = Tensor(np.ones((64, 64)))
            y = (x * 2.0 + 1.0).tanh().sum()
            kernels = schedule(y._payload())
        fused = sum(dev.kernel_time_s(k.flops, k.bytes_moved, k.n_ops)
                    for k in kernels)
        unfused = sum(dev.unfused_time_s(k) for k in kernels)
        assert unfused > fused


class TestStatsAndTelemetry:
    def test_eager_path_counts_ops(self):
        with collect() as stats:
            x = Tensor(np.ones(8))
            ((x * 2.0) + 1.0).data
        assert stats.eager_ops == 2
        assert stats.eager_alloc_bytes == 2 * 8 * 8

    def test_disabled_stats_cost_nothing(self):
        from repro.ml.engine.stats import STATS
        x = Tensor(np.ones(8))
        before = STATS.eager_ops
        (x * 2.0).data
        assert STATS.eager_ops == before

    def test_fused_kernels_emit_spans(self):
        with telemetry.capture() as (tracer, _):
            with engine.engine("lazy"):
                x = Tensor(np.ones((16, 16)))
                ((x * 2.0 + 1.0).tanh().sum()).data
        spans = [s for s in tracer.spans if s.name.startswith("kernel:")]
        assert len(spans) == 1
        span = spans[0]
        assert span.name == "kernel:mul+add+tanh+sum"
        attrs = span.attr_dict()
        assert attrs["ops"] == 4
        assert attrs["flops"] > 0
        assert attrs["bytes"] > 0
        assert span.duration_s > 0
        assert span.track == "engine"


class TestRegisterDeviceRestore:
    def test_registry_survives_custom_registration(self):
        # Re-registering cpu with the stock factory must stay valid.
        engine.register_device("cpu", CpuDevice)
        assert isinstance(get_device("cpu"), CpuDevice)
