"""Finite-difference gradcheck of every primitive op, both engines.

Satellite of the lazy-engine PR: central-difference gradients for the
whole primitive-op vocabulary (unary, binary, reduce, matmul, movement)
and for representative fused chains, each checked under ``ENGINE=eager``
and ``ENGINE=lazy``.  Analytic and numeric gradients must agree to 1e-6
— and because both engines replay the same ufunc sequence, the two
modes' *analytic* gradients must agree to the bit.
"""

import numpy as np
import pytest

from repro.ml import engine
from repro.ml.tensor import Tensor

ATOL = 1e-6
MODES = ("eager", "lazy")


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        x[i] += eps
        fp = f()
        x[i] -= 2 * eps
        fm = f()
        x[i] += eps
        g[i] = (fp - fm) / (2 * eps)
    return g


def gradcheck(build, *arrays, mode: str, atol: float = ATOL):
    """Analytic vs central-difference gradients under ``mode``."""
    with engine.engine(mode):
        params = [Tensor(a.copy(), requires_grad=True) for a in arrays]
        build(*params).backward()

        def value():
            return float(build(*[Tensor(p.data) for p in params]).data)

        grads = []
        for p in params:
            ref = numeric_grad(value, p.data)
            np.testing.assert_allclose(p.grad, ref, atol=atol)
            grads.append(p.grad)
    return grads


def gradcheck_both(build, *arrays, atol: float = ATOL):
    """Run gradcheck in both modes and pin bitwise mode agreement."""
    eager = gradcheck(build, *arrays, mode="eager", atol=atol)
    lazy = gradcheck(build, *arrays, mode="lazy", atol=atol)
    for ge, gl in zip(eager, lazy):
        assert np.array_equal(
            np.ascontiguousarray(ge).view(np.uint64),
            np.ascontiguousarray(gl).view(np.uint64))


rng = np.random.default_rng(1234)


def away_from(x: np.ndarray, points, margin: float = 0.05) -> np.ndarray:
    """Nudge samples off non-differentiable points for finite differences."""
    for p in points:
        x[np.abs(x - p) < margin] = p + 4 * margin
    return x


PRIMITIVES = {
    # unary elementwise
    "neg": (lambda a: (-a).sum(), lambda: rng.normal(size=(3, 4))),
    "exp": (lambda a: a.exp().sum(), lambda: rng.uniform(-1, 1, (3, 4))),
    "log": (lambda a: a.log().sum(), lambda: rng.uniform(0.5, 2.0, (3, 4))),
    "tanh": (lambda a: a.tanh().sum(), lambda: rng.normal(size=(5,))),
    "sigmoid": (lambda a: a.sigmoid().sum(), lambda: rng.normal(size=(5,))),
    "relu": (lambda a: a.relu().sum(),
             lambda: away_from(rng.normal(size=(8,)), [0.0])),
    "abs": (lambda a: a.abs().sum(),
            lambda: away_from(rng.normal(size=(8,)), [0.0])),
    "clip": (lambda a: (a.clip(-1.0, 1.0) ** 2).sum(),
             lambda: away_from(rng.normal(size=(8,)) * 2, [-1.0, 1.0])),
    "pow": (lambda a: (a ** 3).sum(), lambda: rng.uniform(0.5, 1.5, (4,))),
    # binary elementwise (with broadcasting)
    "add": (lambda a: (a + a * 2.0).sum(), lambda: rng.normal(size=(3, 4))),
    "mul": (lambda a: (a * a).sum(), lambda: rng.normal(size=(3, 4))),
    "div": (lambda a: (1.0 / a).sum(), lambda: rng.uniform(0.5, 2.0, (4,))),
    # reduce
    "sum": (lambda a: (a.sum(axis=0) ** 2).sum(),
            lambda: rng.normal(size=(3, 4))),
    "sum_keepdims": (lambda a: (a.sum(axis=1, keepdims=True) * a).sum(),
                     lambda: rng.normal(size=(3, 4))),
    "max": (lambda a: a.max(axis=1).sum(), lambda: rng.normal(size=(4, 5))),
    # matmul
    "matmul": (lambda a: ((a @ a) ** 2).sum(),
               lambda: rng.normal(size=(4, 4))),
    # movement
    "reshape": (lambda a: (a.reshape(2, 6) ** 2).sum(),
                lambda: rng.normal(size=(3, 4))),
    "transpose": (lambda a: (a.transpose(1, 0) @ a).sum(),
                  lambda: rng.normal(size=(3, 4))),
    "pad2d": (lambda a: (a.pad2d(1) ** 2).sum(),
              lambda: rng.normal(size=(1, 2, 3, 3))),
}


class TestPrimitiveOps:
    @pytest.mark.parametrize("name", sorted(PRIMITIVES))
    def test_primitive_gradcheck_both_engines(self, name):
        build, make = PRIMITIVES[name]
        gradcheck_both(build, make())


class TestBinaryBroadcast:
    @pytest.mark.parametrize("mode", MODES)
    def test_two_operand_broadcast(self, mode):
        gradcheck(lambda a, b: ((a + b) * (a / b)).sum(),
                  rng.normal(size=(3, 4)),
                  rng.uniform(1.0, 2.0, size=(4,)), mode=mode)

    @pytest.mark.parametrize("mode", MODES)
    def test_matmul_1d_operands(self, mode):
        gradcheck(lambda v, m: (v @ m).sum(),
                  rng.normal(size=(4,)), rng.normal(size=(4, 3)),
                  mode=mode)
        gradcheck(lambda m, v: (m @ v).sum(),
                  rng.normal(size=(3, 4)), rng.normal(size=(4,)),
                  mode=mode)
        gradcheck(lambda u, v: u @ v,
                  rng.normal(size=(5,)), rng.normal(size=(5,)), mode=mode)


class TestFusedChains:
    """Chains the fuser collapses: gradients must survive kernels whose
    interiors were fused away (recompute-on-demand path)."""

    def test_elementwise_chain(self):
        gradcheck_both(
            lambda a: ((a * 2.0 + 1.0).tanh().sigmoid()).sum(),
            rng.normal(size=(4, 4)))

    def test_elementwise_reduce_epilogue(self):
        gradcheck_both(
            lambda a: ((a * a + 1.0).log().sum(axis=1) ** 2).sum(),
            rng.normal(size=(3, 4)))

    def test_matmul_feeding_fused_chain(self):
        gradcheck_both(
            lambda a, b: ((a @ b + 0.5).relu() * 2.0).sum(),
            away_from(rng.normal(size=(3, 4)), [0.0]),
            rng.normal(size=(4, 2)) + 3.0)

    def test_diamond_reuse(self):
        def build(a):
            h = a * 2.0 + 1.0
            return (h.tanh() * h.sigmoid()).sum()

        gradcheck_both(build, rng.normal(size=(6,)))

    def test_movement_inside_chain(self):
        gradcheck_both(
            lambda a: ((a.transpose(1, 0).reshape(12) * 3.0).exp()).sum(),
            rng.uniform(-0.5, 0.5, (3, 4)))

    def test_softmax_like_composite(self):
        def build(a):
            shifted = a - a.max(axis=1, keepdims=True).detach()
            z = shifted.exp().sum(axis=1, keepdims=True).log()
            return ((shifted - z) * a).sum()

        gradcheck_both(build, rng.normal(size=(3, 5)))
