"""Functional ops: convolution/pooling gradient checks, softmax identities."""

import numpy as np
import pytest

from repro.ml import Tensor
from repro.ml import functional as F
from tests.test_ml_tensor import check_grad, numeric_grad

rng = np.random.default_rng(7)


class TestConv2d:
    def test_output_shape(self):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(5, 3, 3, 3)))
        assert F.conv2d(x, w, stride=1, padding=1).shape == (2, 5, 8, 8)
        assert F.conv2d(x, w, stride=2, padding=1).shape == (2, 5, 4, 4)
        assert F.conv2d(x, w, stride=1, padding=0).shape == (2, 5, 6, 6)

    def test_matches_manual_convolution(self):
        x = rng.normal(size=(1, 1, 4, 4))
        w = rng.normal(size=(1, 1, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        # Manual valid correlation at (0, 0).
        manual = (x[0, 0, :3, :3] * w[0, 0]).sum()
        assert out[0, 0, 0, 0] == pytest.approx(manual)

    def test_gradients(self):
        check_grad(
            lambda x, w, b: (F.conv2d(x, w, b, stride=2, padding=1) ** 2).sum(),
            rng.normal(size=(2, 2, 5, 5)),
            rng.normal(size=(3, 2, 3, 3)),
            rng.normal(size=(3,)),
            atol=1e-4,
        )

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.ones((1, 2, 4, 4))),
                     Tensor(np.ones((1, 3, 3, 3))))


class TestConv1d:
    def test_output_shape(self):
        x = Tensor(rng.normal(size=(2, 3, 10)))
        w = Tensor(rng.normal(size=(4, 3, 5)))
        assert F.conv1d(x, w, padding=2).shape == (2, 4, 10)
        assert F.conv1d(x, w).shape == (2, 4, 6)

    def test_gradients(self):
        check_grad(
            lambda x, w: (F.conv1d(x, w, padding=1) ** 2).sum(),
            rng.normal(size=(2, 2, 6)),
            rng.normal(size=(3, 2, 3)),
            atol=1e-4,
        )

    def test_pad1d(self):
        x = Tensor(rng.normal(size=(1, 2, 4)), requires_grad=True)
        padded = F.pad1d(x, 2)
        assert padded.shape == (1, 2, 8)
        assert np.all(padded.data[:, :, :2] == 0)
        check_grad(lambda a: (F.pad1d(a, 2) ** 2).sum(),
                   rng.normal(size=(1, 2, 4)))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradients(self):
        x = rng.normal(size=(2, 2, 6, 6))
        check_grad(lambda a: (F.max_pool2d(a, 2) ** 2).sum(), x, atol=1e-4)

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradients(self):
        check_grad(lambda a: (F.avg_pool2d(a, 2) ** 2).sum(),
                   rng.normal(size=(1, 2, 4, 4)), atol=1e-4)

    def test_global_avg_pool(self):
        x = Tensor(np.ones((2, 3, 4, 4)))
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, 1.0)


class TestSoftmax:
    def test_softmax_sums_to_one(self):
        x = Tensor(rng.normal(size=(5, 7)) * 10)
        probs = F.softmax(x).data
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-10)
        assert (probs >= 0).all()

    def test_log_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1001.0, 999.0]]))
        logp = F.log_softmax(x).data
        assert np.isfinite(logp).all()

    def test_log_softmax_shift_invariant(self):
        x = rng.normal(size=(3, 4))
        a = F.log_softmax(Tensor(x)).data
        b = F.log_softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_log_softmax_gradient(self):
        check_grad(lambda a: (F.log_softmax(a) * Tensor(np.eye(3))).sum(),
                   rng.normal(size=(3, 3)))


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(rng.normal(size=(4, 4)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_train_mode_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, np.random.default_rng(0), training=True)
        assert out.data.mean() == pytest.approx(1.0, rel=0.05)

    def test_zeroed_fraction(self):
        x = Tensor(np.ones((100, 100)))
        out = F.dropout(x, 0.4, np.random.default_rng(1), training=True)
        assert (out.data == 0).mean() == pytest.approx(0.4, abs=0.03)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))


class TestOneHot:
    def test_encoding(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
