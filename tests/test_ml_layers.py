"""Layers: parameter discovery, modes, state dicts, normalisation."""

import numpy as np
import pytest

from repro.ml import (
    BatchNorm,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
)
from repro.ml.layers import he_init, xavier_init

rng = np.random.default_rng(0)


class TestDense:
    def test_shapes(self):
        layer = Dense(4, 3)
        out = layer(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 3)

    def test_no_bias(self):
        layer = Dense(4, 3, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_linear_in_input(self):
        layer = Dense(3, 2, bias=False)
        x = rng.normal(size=(2, 3))
        a = layer(Tensor(x)).data
        b = layer(Tensor(2 * x)).data
        np.testing.assert_allclose(b, 2 * a)


class TestModuleDiscovery:
    def test_nested_parameters_found(self):
        model = Sequential(Dense(3, 4), ReLU(), Dense(4, 2))
        names = [n for n, _ in model.named_parameters()]
        assert "layers.0.weight" in names
        assert "layers.2.bias" in names
        assert len(model.parameters()) == 4

    def test_n_parameters(self):
        model = Dense(3, 4)
        assert model.n_parameters() == 3 * 4 + 4

    def test_zero_grad_clears_all(self):
        model = Sequential(Dense(2, 2), Dense(2, 1))
        out = model(Tensor(rng.normal(size=(3, 2)))).sum()
        out.backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self):
        model = Sequential(Dense(2, 2), Dropout(0.5), Sequential(Dropout(0.3)))
        model.eval()
        assert not model.layers[1].training
        assert not model.layers[2].layers[0].training
        model.train()
        assert model.layers[1].training


class TestStateDict:
    def test_roundtrip(self):
        a = Sequential(Dense(3, 4), BatchNorm(4))
        b = Sequential(Dense(3, 4, rng=np.random.default_rng(99)), BatchNorm(4))
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_includes_batchnorm_buffers(self):
        bn = BatchNorm(3)
        state = bn.state_dict()
        assert any("running_mean" in k for k in state)

    def test_mismatch_raises(self):
        a = Dense(3, 4)
        b = Dense(3, 5)
        with pytest.raises((KeyError, ValueError)):
            b.load_state_dict(a.state_dict())

    def test_unknown_key_raises(self):
        a = Dense(3, 4)
        state = a.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            a.load_state_dict(state)


class TestBatchNorm:
    def test_normalises_batch(self):
        bn = BatchNorm(4)
        x = Tensor(rng.normal(5.0, 3.0, size=(64, 4)))
        out = bn(x).data
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_4d_input(self):
        bn = BatchNorm(3)
        out = bn(Tensor(rng.normal(size=(2, 3, 5, 5)))).data
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)

    def test_running_stats_converge(self):
        bn = BatchNorm(2, momentum=0.5)
        for _ in range(20):
            bn(Tensor(rng.normal(3.0, 1.0, size=(128, 2))))
        assert bn.running_mean == pytest.approx([3.0, 3.0], abs=0.3)

    def test_eval_uses_running_stats(self):
        bn = BatchNorm(2, momentum=0.0)
        bn(Tensor(rng.normal(10.0, 2.0, size=(256, 2))))
        bn.eval()
        x = Tensor(np.full((4, 2), 10.0))
        out = bn(x).data
        np.testing.assert_allclose(out, 0.0, atol=0.5)

    def test_gamma_beta_trainable(self):
        bn = BatchNorm(3)
        out = bn(Tensor(rng.normal(size=(8, 3)), requires_grad=True)).sum()
        out.backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None


class TestActivationsAndShapes:
    def test_activation_layers(self):
        x = Tensor(rng.normal(size=(3, 3)))
        assert (ReLU()(x).data >= 0).all()
        assert (np.abs(Tanh()(x).data) <= 1).all()
        assert ((Sigmoid()(x).data > 0) & (Sigmoid()(x).data < 1)).all()

    def test_flatten(self):
        out = Flatten()(Tensor(np.ones((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_maxpool_layer(self):
        out = MaxPool2D(2)(Tensor(np.ones((1, 1, 4, 4))))
        assert out.shape == (1, 1, 2, 2)

    def test_global_avg_pool_layer(self):
        out = GlobalAvgPool2D()(Tensor(np.ones((2, 3, 4, 4))))
        assert out.shape == (2, 3)

    def test_sequential_append_and_index(self):
        model = Sequential(Dense(2, 2))
        model.append(ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)


class TestDropoutLayer:
    def test_deterministic_stream(self):
        a = Dropout(0.5, seed=3)
        b = Dropout(0.5, seed=3)
        x = Tensor(np.ones((10, 10)))
        np.testing.assert_array_equal(a(x).data, b(x).data)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.5)


class TestInit:
    def test_he_variance(self):
        w = he_init(np.random.default_rng(0), (2000, 100), fan_in=100)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 100), rel=0.05)

    def test_xavier_bounds(self):
        w = xavier_init(np.random.default_rng(0), (100, 100), 100, 100)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit
