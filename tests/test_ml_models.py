"""Model zoo: shapes, parameter counts, trainability on synthetic data."""

import numpy as np
import pytest

from repro.ml import Adam, Tensor, cross_entropy, mae, mse
from repro.ml.metrics import accuracy
from repro.ml.models import (
    CovidNet,
    Cnn1dForecaster,
    GruForecaster,
    MLP,
    ResNet,
    SpectralAutoencoder,
    resnet20,
    resnet50_config,
    resnet_small,
)
from repro.ml.models.gru_forecaster import locf_baseline, mean_baseline

rng = np.random.default_rng(3)


class TestResNet:
    def test_forward_shape(self):
        net = resnet_small(in_channels=4, n_classes=7)
        out = net(Tensor(rng.normal(size=(2, 4, 8, 8))))
        assert out.shape == (2, 7)

    def test_downsampling_across_stages(self):
        net = ResNet(3, 5, blocks_per_stage=(1, 1, 1), base_width=4)
        out = net(Tensor(rng.normal(size=(1, 3, 16, 16))))
        assert out.shape == (1, 5)

    def test_all_parameters_receive_gradients(self):
        net = resnet_small(in_channels=3, n_classes=4)
        loss = cross_entropy(net(Tensor(rng.normal(size=(2, 3, 8, 8)))),
                             np.array([0, 1]))
        net.zero_grad()
        loss.backward()
        for name, p in net.named_parameters():
            assert p.grad is not None, name

    def test_resnet20_depth(self):
        net = resnet20()
        # 3 stages x 3 blocks + stem + head.
        assert len(net.stages) == 9

    def test_predict_eval_mode_restores_training(self):
        net = resnet_small()
        net.train()
        net.predict(rng.normal(size=(1, 12, 8, 8)))
        assert net.training

    def test_empty_stage_config_rejected(self):
        with pytest.raises(ValueError):
            ResNet(3, 2, blocks_per_stage=())

    def test_resnet50_shape_model(self):
        shape = resnet50_config()
        assert 20e6 < shape.n_parameters < 30e6
        assert shape.flops_per_sample > 1e9

    def test_resnet50_flops_scale_with_resolution(self):
        small = resnet50_config(image_hw=120)
        big = resnet50_config(image_hw=224)
        assert big.flops_per_sample == pytest.approx(
            small.flops_per_sample * (224 / 120) ** 2)

    def test_learns_separable_classes(self):
        X = np.zeros((40, 3, 8, 8))
        y = np.repeat([0, 1], 20)
        X[:20, 0] += 1.0       # class 0: band 0 bright
        X[20:, 2] += 1.0       # class 1: band 2 bright
        X += rng.normal(0, 0.05, X.shape)
        net = resnet_small(in_channels=3, n_classes=2)
        opt = Adam(net.parameters(), lr=5e-3)
        for _ in range(15):
            loss = cross_entropy(net(Tensor(X)), y)
            net.zero_grad()
            loss.backward()
            opt.step()
        assert accuracy(net.predict(X), y) >= 0.9


class TestCovidNet:
    def test_forward_shape_and_classes(self):
        net = CovidNet(base_width=8, n_blocks=2)
        out = net(Tensor(rng.normal(size=(2, 1, 16, 16))))
        assert out.shape == (2, 3)

    def test_predict_proba_sums_to_one(self):
        net = CovidNet(base_width=8, n_blocks=2)
        probs = net.predict_proba(rng.normal(size=(3, 1, 16, 16)))
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)

    def test_parameter_efficiency_of_pepx(self):
        # PEPX keeps the model light relative to a plain convnet stack.
        net = CovidNet(base_width=16, n_blocks=3)
        assert net.n_parameters() < 60_000

    def test_invalid_blocks(self):
        with pytest.raises(ValueError):
            CovidNet(n_blocks=0)


class TestForecasters:
    def test_gru_architecture_matches_paper(self):
        """2 GRU layers, 32 units, dropout 0.2, Dense(1) — Sec. IV-B."""
        model = GruForecaster(n_features=6)
        assert model.gru1.hidden_size == 32
        assert model.gru2.hidden_size == 32
        assert model.drop1.p == pytest.approx(0.2)
        assert model.out.out_features == 1
        assert len(model.regularised_parameters()) == 4

    def test_gru_forward_shape(self):
        model = GruForecaster(n_features=5, hidden=8)
        out = model(Tensor(rng.normal(size=(3, 10, 5))))
        assert out.shape == (3, 1)

    def test_cnn1d_forward_shape(self):
        model = Cnn1dForecaster(n_features=5, channels=8)
        out = model(Tensor(rng.normal(size=(3, 10, 5))))
        assert out.shape == (3, 1)

    def test_models_learn_next_value_of_ar_process(self):
        # AR(1) windows: the next value is 0.9 * last.
        T, n = 8, 300
        series = np.zeros((n, T + 1))
        series[:, 0] = rng.normal(size=n)
        for t in range(T):
            series[:, t + 1] = 0.9 * series[:, t] + 0.05 * rng.normal(size=n)
        X = series[:, :T, None]
        y = series[:, T:T + 1]
        for model in (GruForecaster(1, hidden=8), Cnn1dForecaster(1, channels=8)):
            opt = Adam(model.parameters(), lr=1e-2)
            for _ in range(40):
                loss = mae(model(Tensor(X)), y)
                model.zero_grad()
                loss.backward()
                opt.step()
            model.eval()
            pred = model.predict(X)
            err = np.abs(pred - y).mean()
            baseline = np.abs(mean_baseline(X) - y).mean()
            assert err < baseline

    def test_baselines(self):
        X = rng.normal(size=(4, 6, 2))
        np.testing.assert_array_equal(locf_baseline(X), X[:, -1, 0:1])
        np.testing.assert_allclose(mean_baseline(X, 1),
                                   X[:, :, 1].mean(axis=1, keepdims=True))


class TestAutoencoder:
    def test_shapes_and_ratio(self):
        ae = SpectralAutoencoder(n_bands=12, bottleneck=3)
        assert ae.compression_ratio == pytest.approx(4.0)
        out = ae(Tensor(rng.normal(size=(5, 12))))
        assert out.shape == (5, 12)
        z = ae.encode(Tensor(rng.normal(size=(5, 12))))
        assert z.shape == (5, 3)

    def test_bottleneck_must_compress(self):
        with pytest.raises(ValueError):
            SpectralAutoencoder(n_bands=4, bottleneck=4)

    def test_learns_low_rank_structure(self):
        # Data on a 2-D manifold embedded in 10-D: AE with bottleneck 2
        # should reconstruct well after training.
        basis = rng.normal(size=(2, 10))
        codes = rng.normal(size=(300, 2))
        X = codes @ basis
        ae = SpectralAutoencoder(n_bands=10, bottleneck=2, hidden=16)
        opt = Adam(ae.parameters(), lr=1e-2)
        before = ae.reconstruction_error(X)
        for _ in range(150):
            loss = mse(ae(Tensor(X)), X)
            ae.zero_grad()
            loss.backward()
            opt.step()
        after = ae.reconstruction_error(X)
        assert after < before / 10


class TestMLP:
    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_shapes(self):
        m = MLP([4, 8, 3])
        assert m(Tensor(rng.normal(size=(2, 4)))).shape == (2, 3)

    def test_learns_xor(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        X = np.tile(X, (25, 1)) + rng.normal(0, 0.05, (100, 2))
        y = (np.round(X[:, 0]) != np.round(X[:, 1])).astype(int)
        m = MLP([2, 16, 2], seed=1)
        opt = Adam(m.parameters(), lr=1e-2)
        for _ in range(150):
            loss = cross_entropy(m(Tensor(X)), y)
            m.zero_grad()
            loss.backward()
            opt.step()
        assert accuracy(m.predict(X), y) > 0.95
