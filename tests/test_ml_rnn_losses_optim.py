"""GRU layers, loss functions and optimisers."""

import numpy as np
import pytest

from repro.ml import (
    Adam,
    GRU,
    GRUCell,
    LinearWarmupSchedule,
    SGD,
    Tensor,
    binary_cross_entropy_with_logits,
    cross_entropy,
    l2_regularisation,
    mae,
    mse,
)
from repro.ml.layers import Dense, Parameter
from tests.test_ml_tensor import check_grad

rng = np.random.default_rng(1)


class TestGRU:
    def test_cell_shapes(self):
        cell = GRUCell(3, 5)
        h = cell(Tensor(rng.normal(size=(2, 3))), Tensor(np.zeros((2, 5))))
        assert h.shape == (2, 5)

    def test_layer_last_state(self):
        gru = GRU(3, 4)
        out = gru(Tensor(rng.normal(size=(2, 6, 3))))
        assert out.shape == (2, 4)

    def test_layer_sequences(self):
        gru = GRU(3, 4, return_sequences=True)
        out = gru(Tensor(rng.normal(size=(2, 6, 3))))
        assert out.shape == (2, 6, 4)

    def test_hidden_bounded_by_tanh(self):
        gru = GRU(2, 3)
        out = gru(Tensor(rng.normal(size=(4, 20, 2)) * 5))
        assert np.abs(out.data).max() <= 1.0 + 1e-9

    def test_zero_input_zero_initial_state_stays_bounded(self):
        gru = GRU(2, 3)
        out = gru(Tensor(np.zeros((1, 5, 2))))
        assert np.isfinite(out.data).all()

    def test_gradients_flow_through_time(self):
        gru = GRU(2, 3, rng=np.random.default_rng(5))
        x = Tensor(rng.normal(size=(2, 4, 2)), requires_grad=True)
        (gru(x) ** 2).sum().backward()
        assert x.grad is not None
        assert np.abs(x.grad[:, 0, :]).sum() > 0  # reaches the first step

    def test_gradient_check_small(self):
        gru = GRU(2, 3, rng=np.random.default_rng(5))

        def build(x):
            return (gru(x) ** 2).sum()

        check_grad(build, rng.normal(size=(1, 3, 2)), atol=1e-4)

    def test_custom_initial_state(self):
        gru = GRU(2, 3)
        h0 = Tensor(np.ones((2, 3)))
        out = gru(Tensor(np.zeros((2, 1, 2))), h0=h0)
        assert out.shape == (2, 3)


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.item() == pytest.approx(np.log(3))

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.eye(3) * 100)
        loss = cross_entropy(logits, np.array([0, 1, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_gradient(self):
        labels = np.array([0, 2, 1])
        check_grad(lambda a: cross_entropy(a, labels),
                   rng.normal(size=(3, 3)))

    def test_bce_matches_reference(self):
        logits = rng.normal(size=(5, 4))
        targets = rng.integers(0, 2, size=(5, 4))
        loss = binary_cross_entropy_with_logits(Tensor(logits), targets)
        p = 1 / (1 + np.exp(-logits))
        ref = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        assert loss.item() == pytest.approx(ref, rel=1e-9)

    def test_bce_stable_for_extreme_logits(self):
        logits = Tensor(np.array([[500.0, -500.0]]))
        loss = binary_cross_entropy_with_logits(logits, np.array([[1, 0]]))
        assert np.isfinite(loss.item())
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_mse_and_mae_values(self):
        pred = Tensor(np.array([[1.0], [3.0]]))
        target = np.array([[0.0], [0.0]])
        assert mse(pred, target).item() == pytest.approx(5.0)
        assert mae(pred, target).item() == pytest.approx(2.0)

    def test_masked_losses_ignore_unobserved(self):
        pred = Tensor(np.array([[1.0], [100.0]]))
        target = np.array([[0.0], [0.0]])
        mask = np.array([[1.0], [0.0]])
        assert mae(pred, target, mask).item() == pytest.approx(1.0)
        assert mse(pred, target, mask).item() == pytest.approx(1.0)

    def test_l2_regularisation(self):
        params = [Parameter(np.array([3.0, 4.0]))]
        assert l2_regularisation(params, 0.1).item() == pytest.approx(2.5)
        assert l2_regularisation([], 0.1).item() == 0.0


class TestOptimisers:
    def _quadratic(self, opt_factory, steps=200):
        """Minimise ||x - 3||²; returns final x."""
        p = Parameter(np.array([0.0]))
        opt = opt_factory([p])
        for _ in range(steps):
            loss = ((p - 3.0) ** 2).sum()
            opt.zero_grad()
            loss.backward()
            opt.step()
        return float(p.data[0])

    def test_sgd_converges(self):
        assert self._quadratic(lambda ps: SGD(ps, lr=0.1)) == pytest.approx(3.0, abs=1e-4)

    def test_sgd_momentum_converges(self):
        assert self._quadratic(
            lambda ps: SGD(ps, lr=0.05, momentum=0.9)) == pytest.approx(3.0, abs=1e-3)

    def test_sgd_nesterov(self):
        assert self._quadratic(
            lambda ps: SGD(ps, lr=0.05, momentum=0.9, nesterov=True)
        ) == pytest.approx(3.0, abs=1e-3)

    def test_adam_converges(self):
        assert self._quadratic(
            lambda ps: Adam(ps, lr=0.1), steps=400) == pytest.approx(3.0, abs=1e-3)

    def test_weight_decay_shrinks_solution(self):
        no_wd = self._quadratic(lambda ps: SGD(ps, lr=0.1))
        wd = self._quadratic(lambda ps: SGD(ps, lr=0.1, weight_decay=0.5))
        assert abs(wd) < abs(no_wd)

    def test_nesterov_without_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, nesterov=True)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=0.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_none_grads_skipped(self):
        p1 = Parameter(np.zeros(2))
        p2 = Parameter(np.zeros(2))
        opt = SGD([p1, p2], lr=0.1)
        p1.grad = np.ones(2)
        opt.step()
        np.testing.assert_array_equal(p2.data, 0.0)
        assert (p1.data != 0).all()

    def test_step_count(self):
        opt = Adam([Parameter(np.zeros(1))], lr=0.1)
        opt.step()
        opt.step()
        assert opt.step_count == 2


class TestWarmup:
    def test_linear_ramp_then_constant(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        sched = LinearWarmupSchedule(opt, base_lr=0.1, target_lr=1.0,
                                     warmup_steps=10)
        assert opt.lr == pytest.approx(0.1)
        lrs = [sched.step() for _ in range(12)]
        assert lrs[4] < lrs[8] < lrs[9]
        assert lrs[-1] == pytest.approx(1.0)
        assert lrs[-2] == pytest.approx(1.0)

    def test_zero_warmup_starts_at_target(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        LinearWarmupSchedule(opt, 0.1, 0.5, warmup_steps=0)
        assert opt.lr == pytest.approx(0.5)

    def test_negative_warmup_rejected(self):
        opt = SGD([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            LinearWarmupSchedule(opt, 0.1, 0.5, warmup_steps=-1)
