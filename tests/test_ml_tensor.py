"""Autograd engine: numerical gradient checks and algebraic properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ml import Tensor, ones, tensor, zeros
from repro.ml.tensor import unbroadcast


def numeric_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f() w.r.t. array x (in place)."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        x[i] += eps
        fp = f()
        x[i] -= 2 * eps
        fm = f()
        x[i] += eps
        g[i] = (fp - fm) / (2 * eps)
    return g


def check_grad(build, *params, atol=1e-5):
    """build(*tensors) -> scalar Tensor; verifies every param's gradient."""
    tensors = [Tensor(p, requires_grad=True) for p in params]
    out = build(*tensors)
    out.backward()
    for t in tensors:
        ref = numeric_grad(
            lambda: float(build(*[Tensor(u.data) for u in tensors]).data),
            t.data)
        np.testing.assert_allclose(t.grad, ref, atol=atol)


rng = np.random.default_rng(42)


class TestElementwiseGrads:
    def test_add_broadcast(self):
        check_grad(lambda a, b: (a + b).sum(),
                   rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_mul_broadcast(self):
        check_grad(lambda a, b: (a * b).sum(),
                   rng.normal(size=(2, 3)), rng.normal(size=(2, 1)))

    def test_sub_div(self):
        check_grad(lambda a, b: (a / b - b).sum(),
                   rng.normal(size=(3,)), rng.uniform(1.0, 2.0, size=(3,)))

    def test_pow(self):
        check_grad(lambda a: (a ** 3).sum(), rng.uniform(0.5, 2.0, size=(4,)))

    def test_exp_log(self):
        check_grad(lambda a: (a.exp().log() * a).sum(),
                   rng.uniform(0.5, 1.5, size=(5,)))

    def test_tanh_sigmoid(self):
        check_grad(lambda a: (a.tanh() + a.sigmoid()).sum(),
                   rng.normal(size=(6,)))

    def test_relu(self):
        # Keep values away from the kink for finite differences.
        x = rng.normal(size=(10,))
        x[np.abs(x) < 0.05] = 0.5
        check_grad(lambda a: (a.relu() * a).sum(), x)

    def test_abs(self):
        x = rng.normal(size=(8,))
        x[np.abs(x) < 0.05] = 0.3
        check_grad(lambda a: a.abs().sum(), x)

    def test_clip(self):
        x = rng.normal(size=(8,)) * 3
        x[np.abs(np.abs(x) - 1.0) < 0.05] = 0.0
        check_grad(lambda a: (a.clip(-1, 1) ** 2).sum(), x)

    def test_sqrt(self):
        check_grad(lambda a: a.sqrt().sum(), rng.uniform(0.5, 2.0, size=(4,)))

    def test_rsub_rdiv_radd_rmul(self):
        check_grad(lambda a: ((2.0 - a) + (1.0 / a) + (3.0 * a) + (1.0 + a)).sum(),
                   rng.uniform(0.5, 1.5, size=(4,)))


class TestMatmulGrads:
    def test_2d(self):
        check_grad(lambda a, b: (a @ b).sum(),
                   rng.normal(size=(3, 4)), rng.normal(size=(4, 2)))

    def test_batched(self):
        check_grad(lambda a, b: ((a @ b) ** 2).sum(),
                   rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 2)))

    def test_broadcast_batch(self):
        check_grad(lambda a, b: (a @ b).sum(),
                   rng.normal(size=(2, 3, 4)), rng.normal(size=(4, 5)))

    def test_vec_mat(self):
        check_grad(lambda a, b: (a @ b).sum(),
                   rng.normal(size=(4,)), rng.normal(size=(4, 3)))

    def test_mat_vec(self):
        check_grad(lambda a, b: (a @ b).sum(),
                   rng.normal(size=(3, 4)), rng.normal(size=(4,)))

    def test_vec_vec(self):
        check_grad(lambda a, b: a @ b,
                   rng.normal(size=(5,)), rng.normal(size=(5,)))

    def test_batched_mat_vec(self):
        check_grad(lambda a, b: ((a @ b) ** 2).sum(),
                   rng.normal(size=(2, 3, 4)), rng.normal(size=(4,)))

    def test_1d_values_match_numpy(self):
        v = rng.normal(size=(4,))
        m = rng.normal(size=(4, 3))
        np.testing.assert_array_equal((Tensor(v) @ Tensor(m)).numpy(), v @ m)
        np.testing.assert_array_equal((Tensor(m).T @ Tensor(v)).numpy(),
                                      m.T @ v)
        assert (Tensor(v) @ Tensor(v)).shape == ()
        np.testing.assert_allclose((Tensor(v) @ Tensor(v)).item(), v @ v)

    def test_scalar_operand_rejected(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(2.0)


class TestReductionGrads:
    def test_sum_axis(self):
        check_grad(lambda a: (a.sum(axis=0) ** 2).sum(),
                   rng.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        check_grad(lambda a: (a.sum(axis=1, keepdims=True) * a).sum(),
                   rng.normal(size=(3, 4)))

    def test_mean(self):
        check_grad(lambda a: (a.mean(axis=(1, 2)) ** 2).sum(),
                   rng.normal(size=(2, 3, 4)))

    def test_max(self):
        x = rng.normal(size=(4, 5))
        check_grad(lambda a: a.max(axis=1).sum(), x)

    def test_var(self):
        check_grad(lambda a: a.var(axis=0).sum(), rng.normal(size=(5, 3)))


class TestShapeGrads:
    def test_reshape(self):
        check_grad(lambda a: (a.reshape(6) ** 2).sum(), rng.normal(size=(2, 3)))

    def test_transpose(self):
        check_grad(lambda a: (a.transpose(1, 0, 2) ** 2).sum(),
                   rng.normal(size=(2, 3, 4)))

    def test_T(self):
        check_grad(lambda a: (a.T @ a).sum(), rng.normal(size=(3, 4)))

    def test_getitem_slice(self):
        check_grad(lambda a: (a[1:, :2] ** 2).sum(), rng.normal(size=(3, 4)))

    def test_getitem_sequence_axis(self):
        check_grad(lambda a: (a[:, 2, :] ** 2).sum(), rng.normal(size=(2, 4, 3)))

    def test_concatenate(self):
        check_grad(lambda a, b: (Tensor.concatenate([a, b], axis=1) ** 2).sum(),
                   rng.normal(size=(2, 3)), rng.normal(size=(2, 2)))

    def test_stack(self):
        check_grad(lambda a, b: (Tensor.stack([a, b], axis=0) ** 2).sum(),
                   rng.normal(size=(2, 3)), rng.normal(size=(2, 3)))

    def test_pad2d(self):
        check_grad(lambda a: (a.pad2d(1) ** 2).sum(),
                   rng.normal(size=(1, 2, 3, 3)))


class TestEngine:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_grad_accumulates_over_reuse(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        out = a * a + a            # d/da = 2a + 1 = 5
        out.backward()
        assert a.grad[0] == pytest.approx(5.0)

    def test_diamond_graph(self):
        a = Tensor(np.array([3.0]), requires_grad=True)
        b = a * 2
        c = a * 3
        (b + c).backward()
        assert a.grad[0] == pytest.approx(5.0)

    def test_deep_chain_no_recursion_error(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        x = a
        for _ in range(3000):
            x = x * 1.0001
        x.backward()
        assert a.grad is not None

    def test_detach_stops_gradient(self):
        a = Tensor(np.array([2.0]), requires_grad=True)
        (a.detach() * a).backward()
        assert a.grad[0] == pytest.approx(2.0)   # only the live branch

    def test_no_grad_tracking_without_flag(self):
        a = Tensor(np.ones(3))
        out = (a * 2).sum()
        out.backward()
        assert a.grad is None

    def test_zero_grad(self):
        a = Tensor(np.ones(3), requires_grad=True)
        (a.sum()).backward()
        a.zero_grad()
        assert a.grad is None

    def test_int_input_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "f"

    def test_item_and_len_and_repr(self):
        t = Tensor([[1.0, 2.0]])
        assert len(t) == 1
        assert "shape" in repr(t)
        assert Tensor(5.0).item() == 5.0

    def test_factories(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4
        assert tensor([1.0]).shape == (1,)


class TestDtypePropagation:
    """float32 stays float32 end-to-end; mixed-dtype ops follow NumPy."""

    def test_float32_input_preserved(self):
        assert Tensor(np.ones((2, 2), dtype=np.float32)).dtype == np.float32

    def test_python_scalar_does_not_upcast(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32))
        assert (x * 0.5).dtype == np.float32
        assert (x + 1).dtype == np.float32
        assert (2.0 - x).dtype == np.float32
        assert (1.0 / x).dtype == np.float32
        assert (x ** 2).dtype == np.float32
        assert (x ** 0.5).dtype == np.float32

    def test_mixed_dtype_broadcast_promotes(self):
        a = Tensor(np.ones((3, 1), dtype=np.float32))
        b = Tensor(np.ones((1, 4), dtype=np.float64))
        for out in (a + b, a * b, a / b, b - a):
            assert out.dtype == np.float64
            assert out.shape == (3, 4)

    def test_unary_chain_preserves_float32(self):
        x = Tensor(np.full((4,), 0.5, dtype=np.float32))
        y = x.tanh().sigmoid().relu().exp().abs().clip(0.0, 10.0)
        assert y.dtype == np.float32
        assert y.sum().dtype == np.float32

    def test_matmul_mixed(self):
        a = Tensor(np.ones((2, 3), dtype=np.float32))
        b = Tensor(np.ones((3, 2), dtype=np.float64))
        assert (a @ b).dtype == np.float64
        assert (a @ Tensor(np.ones((3, 2), dtype=np.float32))).dtype \
            == np.float32

    def test_grad_matches_data_dtype(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        (x * x).sum().backward()
        assert x.grad.dtype == np.float32


class TestUnbroadcast:
    @given(hnp.array_shapes(min_dims=1, max_dims=3, max_side=4))
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip_shape(self, shape):
        big = np.broadcast_shapes(shape, (2,) + shape)
        grad = np.ones(big)
        assert unbroadcast(grad, shape).shape == shape

    def test_sums_broadcast_axes(self):
        grad = np.ones((5, 3, 4))
        out = unbroadcast(grad, (3, 1))
        assert out.shape == (3, 1)
        assert out[0, 0] == 20.0


@given(
    a=hnp.arrays(np.float64, (3, 3),
                 elements=st.floats(-10, 10, allow_nan=False)),
    b=hnp.arrays(np.float64, (3, 3),
                 elements=st.floats(-10, 10, allow_nan=False)),
)
@settings(max_examples=60, deadline=None)
def test_property_addition_gradient_is_ones(a, b):
    ta = Tensor(a, requires_grad=True)
    tb = Tensor(b, requires_grad=True)
    (ta + tb).sum().backward()
    np.testing.assert_array_equal(ta.grad, np.ones((3, 3)))
    np.testing.assert_array_equal(tb.grad, np.ones((3, 3)))


@given(
    a=hnp.arrays(np.float64, (4,), elements=st.floats(-5, 5, allow_nan=False)),
)
@settings(max_examples=60, deadline=None)
def test_property_mul_gradient_is_other_operand(a):
    b = np.arange(4.0) + 1
    ta = Tensor(a, requires_grad=True)
    (ta * Tensor(b)).sum().backward()
    np.testing.assert_allclose(ta.grad, b)
