"""Cross-module MPI (federation costs) and co-allocated multi-module jobs —
the MSA's 'combinations of module resources' capability."""

import numpy as np
import pytest

from repro.core import (
    BoosterModule,
    ClusterModule,
    CoAllocatedPhase,
    DataAnalyticsModule,
    DEEP_CM_NODE,
    DEEP_DAM_NODE,
    DEEP_ESB_NODE,
    Job,
    JobPhase,
    MSASystem,
    MsaScheduler,
    StorageModule,
    WorkloadClass,
)
from repro.mpi import ModularCostModel, run_modular_spmd
from repro.simnet.link import LinkKind

FABRICS = {"booster": LinkKind.INFINIBAND_HDR,
           "cluster": LinkKind.INFINIBAND_EDR,
           "dam": LinkKind.EXTOLL}


# ---------------------------------------------------------------------------
# modular MPI
# ---------------------------------------------------------------------------

class TestModularCostModel:
    def test_intra_module_uses_fabric_cost(self):
        model = ModularCostModel.build(["booster"] * 4, FABRICS)
        local = model.module_models["booster"]
        assert model.ptp_between(0, 3, 1e6) == pytest.approx(local.ptp(1e6))

    def test_inter_module_costs_more(self):
        model = ModularCostModel.build(
            ["booster", "booster", "cluster"], FABRICS)
        assert model.ptp_between(0, 2, 1e6) > model.ptp_between(0, 1, 1e6)

    def test_inter_module_latency_additive(self):
        model = ModularCostModel.build(["booster", "cluster"], FABRICS)
        expected_alpha = (model.module_models["booster"].alpha
                          + model.federation.alpha
                          + model.module_models["cluster"].alpha)
        assert model.ptp_between(0, 1, 0) == pytest.approx(expected_alpha)

    def test_worst_case_scalar_surface(self):
        spanning = ModularCostModel.build(["booster", "cluster"], FABRICS)
        single = ModularCostModel.build(["booster", "booster"], FABRICS)
        assert spanning.alpha > single.alpha
        assert spanning.spans_modules()
        assert not single.spans_modules()

    def test_unknown_module_rejected(self):
        with pytest.raises(ValueError):
            ModularCostModel(rank_module=("x",), module_models={},
                             federation=None)

    def test_functional_results_unaffected_by_placement(self):
        """Placement changes time, never numerics."""
        data = np.arange(32.0)

        def fn(comm):
            return comm.allreduce(data + comm.rank)

        same = run_modular_spmd(fn, ["booster"] * 4, FABRICS)
        spanning = run_modular_spmd(
            fn, ["booster", "booster", "cluster", "dam"], FABRICS)
        np.testing.assert_allclose(same[0], spanning[0])

    def test_spanning_modules_slows_allreduce(self):
        """Why Horovod jobs stay inside the booster."""
        def fn(comm):
            comm.allreduce(np.ones(500_000))
            return comm.sim_time

        intra = max(run_modular_spmd(fn, ["booster"] * 8, FABRICS))
        spanning = max(run_modular_spmd(
            fn, ["booster"] * 4 + ["cluster"] * 4, FABRICS))
        assert spanning > intra * 1.3

    def test_more_modules_spanned_is_worse_or_equal(self):
        def fn(comm):
            comm.allreduce(np.ones(200_000))
            return comm.sim_time

        two = max(run_modular_spmd(
            fn, ["booster"] * 4 + ["cluster"] * 4, FABRICS))
        three = max(run_modular_spmd(
            fn, ["booster"] * 3 + ["cluster"] * 3 + ["dam"] * 2, FABRICS))
        assert three >= two * 0.8  # sanity: same order of magnitude
        assert three > 0


# ---------------------------------------------------------------------------
# co-allocated phases
# ---------------------------------------------------------------------------

def small_system() -> MSASystem:
    sys = MSASystem("co")
    sys.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, 8))
    sys.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, 8))
    sys.add_module("dam", DataAnalyticsModule("DAM", DEEP_DAM_NODE, 4))
    sys.add_module("sssm", StorageModule("S", capacity_PB=1.0))
    return sys


def insitu_job(name="insitu", coupling=50e9) -> Job:
    return Job(name=name, phases=[CoAllocatedPhase(
        name="solve+analyse",
        components=(
            JobPhase(name="solver",
                     workload=WorkloadClass.SIMULATION_HIGHSCALE,
                     work_flops=1e17, nodes=6, uses_gpu=True,
                     parallel_fraction=0.99),
            JobPhase(name="analytics",
                     workload=WorkloadClass.DATA_ANALYTICS,
                     work_flops=1e14, nodes=2,
                     memory_GB_per_node=400.0),
        ),
        coupling_bytes=coupling,
    )])


class TestCoAllocation:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoAllocatedPhase(name="x", components=(JobPhase(
                name="only", workload=WorkloadClass.ML_TRAINING,
                work_flops=1.0),))
        with pytest.raises(ValueError):
            CoAllocatedPhase(name="x", components=(
                JobPhase(name="a", workload=WorkloadClass.ML_TRAINING,
                         work_flops=1.0),
                JobPhase(name="b", workload=WorkloadClass.ML_TRAINING,
                         work_flops=1.0)), coupling_bytes=-1)

    def test_components_on_matching_modules(self):
        sched = MsaScheduler(small_system())
        sched.submit(insitu_job())
        report = sched.run()
        placement = {a.phase_name.split("/")[1]: a.module_key
                     for a in report.allocations}
        assert placement["solver"] == "esb"
        assert placement["analytics"] == "dam"

    def test_components_start_and_end_together(self):
        sched = MsaScheduler(small_system())
        sched.submit(insitu_job())
        report = sched.run()
        assert len({a.start for a in report.allocations}) == 1
        assert len({a.end for a in report.allocations}) == 1

    def test_coupling_traffic_extends_runtime(self):
        def makespan(coupling):
            sched = MsaScheduler(small_system())
            sched.submit(insitu_job(coupling=coupling))
            return sched.run().makespan

        assert makespan(5e12) > makespan(0.0)

    def test_all_nodes_released(self):
        system = small_system()
        sched = MsaScheduler(system)
        sched.submit(insitu_job())
        sched.run()
        for module in system.compute_modules().values():
            assert module.free_nodes == module.n_nodes

    def test_waits_until_both_modules_available(self):
        # Occupy the DAM with a long analytics job; the co-allocation must
        # wait even though the booster is free.
        blocker = Job(name="hog", phases=[JobPhase(
            name="spark", workload=WorkloadClass.DATA_ANALYTICS,
            work_flops=5e15, nodes=4, memory_GB_per_node=400.0)])
        sched = MsaScheduler(small_system())
        sched.submit(blocker)
        sched.submit(insitu_job())
        report = sched.run()
        hog_end = max(a.end for a in report.allocations
                      if a.job_name == "hog")
        insitu_start = min(a.start for a in report.allocations
                           if a.job_name == "insitu")
        assert insitu_start >= hog_end - 1e-9

    def test_mixed_phase_types_in_one_job(self):
        job = Job(name="mixed", phases=[
            JobPhase(name="prep", workload=WorkloadClass.SIMULATION_LOWSCALE,
                     work_flops=1e13, nodes=1),
            insitu_job().phases[0],
        ])
        sched = MsaScheduler(small_system())
        sched.submit(job)
        report = sched.run()
        assert len(report.allocations) == 3     # prep + 2 components
        prep = [a for a in report.allocations if a.phase_name == "prep"][0]
        coalloc_start = min(a.start for a in report.allocations
                            if "/" in a.phase_name)
        assert coalloc_start >= prep.end

    def test_same_module_coalloc_when_capacity_allows(self):
        # Two CPU components both best on CM: greedy packs them there.
        job = Job(name="dual-cm", phases=[CoAllocatedPhase(
            name="pair",
            components=(
                JobPhase(name="a", workload=WorkloadClass.SIMULATION_LOWSCALE,
                         work_flops=1e13, nodes=3),
                JobPhase(name="b", workload=WorkloadClass.SIMULATION_LOWSCALE,
                         work_flops=1e13, nodes=3),
            ))])
        sched = MsaScheduler(small_system())
        sched.submit(job)
        report = sched.run()
        keys = [a.module_key for a in report.allocations]
        assert keys == ["cm", "cm"]
        used = [n for a in report.allocations for n in a.nodes]
        assert len(used) == len(set(used))       # disjoint node sets
