"""Collective algorithms: correctness at multiple world sizes, including
non-powers-of-two, verified against NumPy reference reductions."""

import numpy as np
import pytest

from repro.mpi import ReduceOp, run_spmd
from repro.mpi.collectives import rabenseifner_allreduce

SIZES = [1, 2, 3, 4, 5, 7, 8]


@pytest.mark.parametrize("ws", SIZES)
def test_bcast_object(ws):
    def fn(comm):
        return comm.bcast({"v": 42} if comm.rank == 0 else None, root=0)

    assert run_spmd(fn, ws) == [{"v": 42}] * ws


@pytest.mark.parametrize("ws", [2, 3, 5, 8])
def test_bcast_nonzero_root(ws):
    root = ws - 1

    def fn(comm):
        return comm.bcast("payload" if comm.rank == root else None, root=root)

    assert run_spmd(fn, ws) == ["payload"] * ws


@pytest.mark.parametrize("ws", SIZES)
def test_barrier_completes(ws):
    def fn(comm):
        for _ in range(3):
            comm.barrier()
        return True

    assert all(run_spmd(fn, ws))


@pytest.mark.parametrize("ws", SIZES)
def test_gather(ws):
    def fn(comm):
        return comm.gather(comm.rank ** 2, root=0)

    out = run_spmd(fn, ws)
    assert out[0] == [r ** 2 for r in range(ws)]
    assert all(o is None for o in out[1:])


@pytest.mark.parametrize("ws", SIZES)
def test_scatter(ws):
    def fn(comm):
        objs = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
        return comm.scatter(objs, root=0)

    assert run_spmd(fn, ws) == [f"item{i}" for i in range(ws)]


def test_scatter_wrong_length_raises():
    from repro.mpi import SpmdFailure

    def fn(comm):
        comm.scatter([1] if comm.rank == 0 else None, root=0)

    with pytest.raises(SpmdFailure):
        run_spmd(fn, 3)


@pytest.mark.parametrize("ws", SIZES)
def test_allgather(ws):
    def fn(comm):
        return comm.allgather(comm.rank * 10)

    expected = [r * 10 for r in range(ws)]
    assert run_spmd(fn, ws) == [expected] * ws


@pytest.mark.parametrize("ws", SIZES)
def test_alltoall(ws):
    def fn(comm):
        objs = [(comm.rank, j) for j in range(comm.size)]
        return comm.alltoall(objs)

    out = run_spmd(fn, ws)
    for r, row in enumerate(out):
        assert row == [(j, r) for j in range(ws)]


@pytest.mark.parametrize("ws", SIZES)
@pytest.mark.parametrize("op,ref", [
    (ReduceOp.SUM, lambda xs: sum(xs)),
    (ReduceOp.MAX, lambda xs: max(xs)),
    (ReduceOp.MIN, lambda xs: min(xs)),
    (ReduceOp.PROD, lambda xs: int(np.prod(xs))),
])
def test_reduce_ops(ws, op, ref):
    def fn(comm):
        return comm.reduce(comm.rank + 1, op=op, root=0)

    out = run_spmd(fn, ws)
    assert out[0] == ref(list(range(1, ws + 1)))


@pytest.mark.parametrize("ws", SIZES)
def test_allreduce_scalar_sum(ws):
    def fn(comm):
        return comm.allreduce(comm.rank + 1)

    assert run_spmd(fn, ws) == [ws * (ws + 1) // 2] * ws


@pytest.mark.parametrize("ws", SIZES)
def test_allreduce_array_matches_numpy(ws):
    rng = np.random.default_rng(7)
    data = rng.normal(size=(ws, 257))
    expected = data.sum(axis=0)

    def fn(comm):
        return comm.allreduce(data[comm.rank].copy())

    for out in run_spmd(fn, ws):
        np.testing.assert_allclose(out, expected, rtol=1e-12)


@pytest.mark.parametrize("ws", [2, 4, 8])
def test_allreduce_max_on_arrays(ws):
    def fn(comm):
        a = np.full(5, float(comm.rank))
        return comm.allreduce(a, op=ReduceOp.MAX)

    for out in run_spmd(fn, ws):
        np.testing.assert_array_equal(out, np.full(5, ws - 1))


@pytest.mark.parametrize("ws", SIZES)
def test_scan_prefix_sums(ws):
    def fn(comm):
        return comm.scan(comm.rank + 1)

    assert run_spmd(fn, ws) == [sum(range(1, r + 2)) for r in range(ws)]


@pytest.mark.parametrize("ws", SIZES)
def test_uppercase_allreduce(ws):
    def fn(comm):
        send = np.full(16, comm.rank + 1.0)
        recv = np.empty(16)
        comm.Allreduce(send, recv)
        return recv

    for out in run_spmd(fn, ws):
        np.testing.assert_array_equal(out, np.full(16, ws * (ws + 1) / 2))


@pytest.mark.parametrize("ws", [2, 4])
def test_uppercase_bcast_reduce_allgather(ws):
    def fn(comm):
        buf = np.arange(8.0) if comm.rank == 0 else np.empty(8)
        comm.Bcast(buf, root=0)
        recv = np.empty(8) if comm.rank == 0 else None
        comm.Reduce(buf, recv, root=0)
        gathered = np.empty(8 * comm.size)
        comm.Allgather(np.full(8, float(comm.rank)), gathered)
        return (buf, recv, gathered)

    out = run_spmd(fn, ws)
    for rank, (buf, recv, gathered) in enumerate(out):
        np.testing.assert_array_equal(buf, np.arange(8.0))
        if rank == 0:
            np.testing.assert_array_equal(recv, np.arange(8.0) * ws)
        expected = np.concatenate([np.full(8, float(r)) for r in range(ws)])
        np.testing.assert_array_equal(gathered, expected)


@pytest.mark.parametrize("ws", [1, 2, 4, 8])
def test_rabenseifner_matches_sum(ws):
    rng = np.random.default_rng(3)
    data = rng.normal(size=(ws, 64))
    expected = data.sum(axis=0)

    def fn(comm):
        return rabenseifner_allreduce(comm, data[comm.rank].copy(),
                                      comm._next_coll_tag())

    for out in run_spmd(fn, ws):
        np.testing.assert_allclose(out, expected, rtol=1e-12)


def test_rabenseifner_rejects_non_power_of_two():
    from repro.mpi import SpmdFailure

    def fn(comm):
        rabenseifner_allreduce(comm, np.ones(64), comm._next_coll_tag())

    with pytest.raises(SpmdFailure):
        run_spmd(fn, 3)


def test_ring_allreduce_small_array_falls_back():
    # Arrays smaller than the world size use recursive doubling instead.
    def fn(comm):
        return comm.allreduce(np.ones(2))

    for out in run_spmd(fn, 5):
        np.testing.assert_array_equal(out, np.full(2, 5.0))


def test_mixed_collective_sequence_stays_aligned():
    """Back-to-back different collectives must not cross-match messages."""
    def fn(comm):
        a = comm.allreduce(np.ones(64))
        b = comm.bcast(comm.rank if comm.rank == 1 else None, root=1)
        comm.barrier()
        c = comm.allgather(comm.rank)
        d = comm.allreduce(float(comm.rank))
        return (a.sum(), b, c, d)

    ws = 4
    out = run_spmd(fn, ws)
    for a_sum, b, c, d in out:
        assert a_sum == 64.0 * ws
        assert b == 1
        assert c == list(range(ws))
        assert d == sum(range(ws))


@pytest.mark.parametrize("ws", [2, 3, 5, 8])
@pytest.mark.parametrize("root", [1, 2])
def test_reduce_nonzero_root(ws, root):
    root = root % ws

    def fn(comm):
        return comm.reduce(comm.rank + 1, op=ReduceOp.SUM, root=root)

    out = run_spmd(fn, ws)
    assert out[root] == ws * (ws + 1) // 2
    assert all(out[r] is None for r in range(ws) if r != root)


@pytest.mark.parametrize("ws", [3, 4, 6])
def test_alltoall_large_payloads(ws):
    def fn(comm):
        blocks = [np.full(500, comm.rank * 10 + j, dtype=float)
                  for j in range(comm.size)]
        received = comm.alltoall(blocks)
        return [float(r[0]) for r in received]

    out = run_spmd(fn, ws)
    for r, row in enumerate(out):
        assert row == [j * 10 + r for j in range(ws)]
