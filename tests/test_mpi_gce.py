"""The FPGA Global Collective Engine (E9): numerical equality with the
software path, and the latency/bandwidth advantage of in-network reduction."""

import numpy as np
import pytest

from repro.mpi import GlobalCollectiveEngine, ReduceOp, gce_allreduce, run_spmd
from repro.mpi.runtime import spmd_sim_times


@pytest.fixture
def gce(hdr_fabric):
    return GlobalCollectiveEngine(hdr_fabric)


@pytest.mark.parametrize("ws", [1, 2, 3, 4, 8])
def test_gce_result_equals_software_allreduce(gce, ws):
    rng = np.random.default_rng(11)
    data = rng.normal(size=(ws, 300))
    expected = data.sum(axis=0)

    def fn(comm):
        return gce_allreduce(comm, data[comm.rank].copy(), gce)

    for out in run_spmd(fn, ws):
        np.testing.assert_allclose(out, expected, rtol=1e-12)


def test_gce_preserves_shape(gce):
    def fn(comm):
        return gce_allreduce(comm, np.ones((4, 5)), gce).shape

    assert run_spmd(fn, 2) == [(4, 5)] * 2


def test_gce_rejects_non_sum(gce):
    from repro.mpi import SpmdFailure

    def fn(comm):
        gce_allreduce(comm, np.ones(8), gce, op=ReduceOp.MAX)

    with pytest.raises(SpmdFailure):
        run_spmd(fn, 2)


def test_gce_time_model_faster_than_software_at_booster_scale(gce):
    # At small p with huge payloads a ring is bandwidth-optimal and can win;
    # the GCE's advantage is at scale (the ESB's regime) and for
    # latency-bound sizes at any p.
    for p in (16, 64, 256):
        for nbytes in (1024, 1 << 20, 100 << 20):
            assert gce.allreduce_time(p, nbytes) < \
                gce.software_allreduce_time(p, nbytes)
    for p in (4, 8):
        assert gce.allreduce_time(p, 1024) < \
            gce.software_allreduce_time(p, 1024)


def test_gce_speedup_grows_with_rank_count(gce):
    """In-network trees beat rings most where per-step latency dominates."""
    s8 = gce.speedup(8, 4096)
    s512 = gce.speedup(512, 4096)
    assert s512 > s8 > 1.0


def test_gce_near_constant_in_p(gce):
    """Tree depth grows as log_radix(p): 16x more ranks, ~1 more hop."""
    t16 = gce.allreduce_time(16, 1 << 20)
    t256 = gce.allreduce_time(256, 1 << 20)
    assert t256 < t16 * 1.5


def test_gce_single_rank_free(gce):
    assert gce.allreduce_time(1, 1 << 20) == 0.0


def test_gce_invalid_rank_count(gce):
    with pytest.raises(ValueError):
        gce.allreduce_time(0, 1024)


def test_gce_simulated_clock_charged_gce_time(gce, hdr_fabric):
    nbytes = 100_000 * 8

    def fn(comm):
        gce_allreduce(comm, np.zeros(100_000), gce)
        return comm.sim_time

    _, times = spmd_sim_times(fn, 4, cost_model=hdr_fabric)
    expected = gce.allreduce_time(4, nbytes)
    assert max(times) == pytest.approx(expected, rel=0.05)


def test_gce_then_software_collectives_still_aligned(gce):
    """GCE offload must not desynchronise the collective tag sequence."""
    def fn(comm):
        a = gce_allreduce(comm, np.full(64, float(comm.rank)), gce)
        b = comm.allreduce(1)
        c = comm.bcast("ok" if comm.rank == 0 else None)
        return (float(a[0]), b, c)

    ws = 4
    for a0, b, c in run_spmd(fn, ws):
        assert a0 == sum(range(ws))
        assert b == ws
        assert c == "ok"


def test_booster_module_exposes_gce():
    from repro.core import BoosterModule, DEEP_ESB_NODE
    from repro.core.module import AllocationError

    esb = BoosterModule("esb", DEEP_ESB_NODE, 8)
    assert esb.gce().allreduce_time(8, 1024) > 0
    disabled = BoosterModule("esb2", DEEP_ESB_NODE, 8, gce_enabled=False)
    with pytest.raises(AllocationError):
        disabled.gce()
