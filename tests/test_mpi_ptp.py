"""Point-to-point messaging, SPMD runtime, communicator management."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, run_spmd, SpmdFailure
from repro.mpi.runtime import spmd_sim_times
from repro.mpi.transport import payload_nbytes


def test_world_size_one_runs_inline():
    assert run_spmd(lambda comm: comm.rank, 1) == [0]


def test_rank_and_size():
    out = run_spmd(lambda comm: (comm.Get_rank(), comm.Get_size()), 4)
    assert out == [(0, 4), (1, 4), (2, 4), (3, 4)]


def test_send_recv_object():
    def fn(comm):
        if comm.rank == 0:
            comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return None
        return comm.recv(source=0, tag=11)

    out = run_spmd(fn, 2)
    assert out[1] == {"a": 7, "b": 3.14}


def test_send_recv_numpy_buffer():
    def fn(comm):
        if comm.rank == 0:
            comm.Send(np.arange(10, dtype=np.float64), dest=1)
            return None
        buf = np.empty(10)
        comm.Recv(buf, source=0)
        return buf

    out = run_spmd(fn, 2)
    assert np.array_equal(out[1], np.arange(10))


def test_isend_returns_completed_request():
    def fn(comm):
        if comm.rank == 0:
            req = comm.isend("x", dest=1)
            req.wait()
            assert req.test() == (True, None)
        else:
            return comm.recv(source=0)

    out = run_spmd(fn, 2)
    assert out[1] == "x"


def test_sendrecv_ring_rotation():
    def fn(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        return comm.sendrecv(comm.rank, dest=right, source=left)

    out = run_spmd(fn, 5)
    assert out == [4, 0, 1, 2, 3]


def test_any_source_any_tag():
    def fn(comm):
        if comm.rank == 0:
            got = [comm.recv(source=ANY_SOURCE, tag=ANY_TAG) for _ in range(2)]
            return sorted(got)
        comm.send(comm.rank * 100, dest=0, tag=comm.rank)
        return None

    out = run_spmd(fn, 3)
    assert out[0] == [100, 200]


def test_tag_matching_out_of_order():
    def fn(comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    out = run_spmd(fn, 2)
    assert out[1] == ("first", "second")


def test_probe():
    def fn(comm):
        if comm.rank == 0:
            comm.send(1, dest=1, tag=5)
            return None
        while not comm.probe(source=0, tag=5):
            pass
        return comm.recv(source=0, tag=5)

    assert run_spmd(fn, 2)[1] == 1


def test_exception_propagates_and_unblocks():
    def fn(comm):
        if comm.rank == 0:
            raise RuntimeError("boom")
        comm.recv(source=0)  # would deadlock without abort propagation

    with pytest.raises(SpmdFailure) as exc:
        run_spmd(fn, 2)
    assert exc.value.rank == 0


def test_user_tag_range_enforced():
    def fn(comm):
        comm.send("x", dest=comm.rank, tag=1 << 21)

    with pytest.raises(SpmdFailure):
        run_spmd(fn, 2)


def test_invalid_world_size():
    with pytest.raises(ValueError):
        run_spmd(lambda comm: None, 0)


def test_rank_args():
    out = run_spmd(lambda comm, x: x * 2, 3, rank_args=[(1,), (2,), (3,)])
    assert out == [2, 4, 6]


def test_traffic_counters():
    def fn(comm):
        if comm.rank == 0:
            comm.Send(np.zeros(100), dest=1)
        elif comm.rank == 1:
            buf = np.empty(100)
            comm.Recv(buf, source=0)
        return (comm.state.bytes_sent, comm.state.bytes_received)

    out = run_spmd(fn, 2)
    assert out[0][0] == 800
    assert out[1][1] == 800


class TestSplitDup:
    def test_split_by_parity(self):
        def fn(comm):
            sub = comm.Split(color=comm.rank % 2, key=comm.rank)
            return (sub.rank, sub.size, sub.allreduce(comm.rank))

        out = run_spmd(fn, 6)
        evens = sum(r for r in range(6) if r % 2 == 0)
        odds = sum(r for r in range(6) if r % 2 == 1)
        for rank, (sub_rank, sub_size, total) in enumerate(out):
            assert sub_size == 3
            assert total == (evens if rank % 2 == 0 else odds)

    def test_split_key_orders_ranks(self):
        def fn(comm):
            # Reverse the ordering within one color.
            sub = comm.Split(color=0, key=-comm.rank)
            return sub.rank

        out = run_spmd(fn, 4)
        assert out == [3, 2, 1, 0]

    def test_split_negative_color_returns_none(self):
        def fn(comm):
            sub = comm.Split(color=-1 if comm.rank == 0 else 0)
            if comm.rank == 0:
                return sub is None
            return sub.size

        out = run_spmd(fn, 3)
        assert out[0] is True
        assert out[1] == 2

    def test_dup_isolates_traffic(self):
        def fn(comm):
            dup = comm.Dup()
            if comm.rank == 0:
                comm.send("world", dest=1, tag=3)
                dup.send("dup", dest=1, tag=3)
                return None
            # Same (source, tag) on two communicators stays separated.
            from_dup = dup.recv(source=0, tag=3)
            from_world = comm.recv(source=0, tag=3)
            return (from_world, from_dup)

        out = run_spmd(fn, 2)
        assert out[1] == ("world", "dup")


class TestPayloadSize:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80

    def test_bytes(self):
        assert payload_nbytes(b"12345") == 5

    def test_object_is_pickle_size(self):
        assert payload_nbytes({"k": 1}) > 0


def test_spmd_sim_times_reports_clocks():
    def fn(comm):
        comm.allreduce(np.ones(1000))

    _, times = spmd_sim_times(fn, 4)
    assert all(t > 0 for t in times)
