"""The simulated clock: messages advance logical time per the fabric model."""

import numpy as np
import pytest

from repro.mpi import run_spmd
from repro.mpi.runtime import spmd_sim_times
from repro.simnet import CommCostModel, LinkKind


def test_compute_advances_clock():
    def fn(comm):
        comm.compute(1.5)
        comm.compute(0.5)
        return comm.sim_time

    assert run_spmd(fn, 1) == [2.0]


def test_negative_compute_rejected():
    from repro.mpi import SpmdFailure

    with pytest.raises(SpmdFailure):
        run_spmd(lambda comm: comm.compute(-1.0), 2)


def test_message_charges_link_cost(hdr_fabric):
    model = hdr_fabric

    def fn(comm):
        if comm.rank == 0:
            comm.Send(np.zeros(125_000), dest=1)   # 1 MB
        else:
            buf = np.empty(125_000)
            comm.Recv(buf, source=0)
        return comm.sim_time

    _, times = spmd_sim_times(fn, 2, cost_model=model)
    expected = model.ptp(1_000_000)
    assert times[1] == pytest.approx(expected, rel=0.01)


def test_receiver_never_ahead_of_sender_plus_cost():
    def fn(comm):
        if comm.rank == 0:
            comm.compute(1.0)
            comm.send("late", dest=1)
        else:
            comm.recv(source=0)
        return comm.sim_time

    _, times = spmd_sim_times(fn, 2)
    # Receiver's clock must include the sender's 1 s of compute.
    assert times[1] >= 1.0


def test_bigger_payload_takes_longer():
    def fn(comm, n):
        comm.allreduce(np.ones(n))
        return comm.sim_time

    _, t_small = spmd_sim_times(fn, 4, args=(1_000,))
    _, t_big = spmd_sim_times(fn, 4, args=(1_000_000,))
    assert max(t_big) > max(t_small)


def test_more_ranks_cost_more_latency():
    def fn(comm):
        comm.allreduce(np.ones(64))
        return comm.sim_time

    _, t2 = spmd_sim_times(fn, 2)
    _, t8 = spmd_sim_times(fn, 8)
    assert max(t8) > max(t2)


def test_slower_fabric_slower_clock(hdr_fabric):
    def fn(comm):
        comm.allreduce(np.ones(500_000))
        return comm.sim_time

    fast = hdr_fabric
    slow = CommCostModel.of_kind(LinkKind.ETHERNET_100G)
    _, t_fast = spmd_sim_times(fn, 4, cost_model=fast)
    _, t_slow = spmd_sim_times(fn, 4, cost_model=slow)
    assert max(t_slow) > max(t_fast)


def test_comm_and_compute_time_accounted_separately():
    def fn(comm):
        comm.compute(0.25)
        comm.allreduce(np.ones(10_000))
        return (comm.state.compute_time, comm.state.comm_time)

    out = run_spmd(fn, 4)
    for compute, comm_t in out:
        assert compute == pytest.approx(0.25)
        assert comm_t > 0


def test_sim_clock_deterministic():
    def fn(comm):
        comm.allreduce(np.ones(4096))
        comm.bcast("x" if comm.rank == 0 else None)
        return comm.sim_time

    _, t1 = spmd_sim_times(fn, 4)
    _, t2 = spmd_sim_times(fn, 4)
    assert t1 == t2
