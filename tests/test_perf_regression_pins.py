"""Bit-identity pins for the hot-path optimizations.

Each optimization in this PR family (inlined DES run loop, trusted
envelope fast path, pooled gradient-fusion buffers) is required to be
*behavior-preserving to the bit*.  These tests pin that property by
running the optimized path against an unoptimized reference built from
the still-exported primitives (``Simulator.step``, ``checksum_payload``,
``_flatten_grads``), so any future "optimization" that changes numerics
fails here rather than drifting a digest silently.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.distributed.horovod import (
    DistributedOptimizer,
    _flatten_grads,
    _unflatten_into_grads,
    broadcast_parameters,
)
from repro.ml.models import MLP
from repro.ml.optim import SGD
from repro.ml.tensor import Tensor
from repro.ml.losses import cross_entropy
from repro.mpi.comm import Communicator
from repro.mpi.runtime import run_spmd
from repro.mpi.transport import Transport
from repro.resilience.faults import FaultPlan
from repro.resilience.integrity import (
    TRUSTED_CRC,
    CorruptionInjector,
    Envelope,
    IntegrityConfig,
    IntegrityContext,
    checksum_payload,
)
from repro.simnet.events import Simulator


# ---------------------------------------------------------------------------
# DES kernel: inlined run() vs the step() reference
# ---------------------------------------------------------------------------

def _des_workload(sim: Simulator, trace: list) -> None:
    """A mix of processes, timeouts, resources and cancellations."""
    res = sim.resource(2, name="res")

    def worker(i):
        for hop in range(4):
            yield sim.timeout(0.1 * ((i * 7 + hop) % 5) + 0.01)
            grant = res.acquire()
            yield grant
            yield sim.timeout(0.05)
            res.release()
            trace.append((round(sim.now, 9), i, hop))
        return i

    procs = [sim.process(worker(i), name=f"w{i}") for i in range(8)]
    doomed = sim.timeout(0.5, name="doomed")
    doomed.cancel()
    sim.all_of([p.done for p in procs], name="all-done") \
        .add_callback(lambda evt: trace.append(("done", round(sim.now, 9))))


class TestRunLoopPinsStepSemantics:
    def test_run_matches_step_by_step_reference(self):
        fast_trace, ref_trace = [], []

        sim_fast = Simulator()
        _des_workload(sim_fast, fast_trace)
        end_fast = sim_fast.run()

        sim_ref = Simulator()
        _des_workload(sim_ref, ref_trace)
        while sim_ref.step():
            pass

        assert fast_trace == ref_trace
        assert end_fast == sim_ref.now
        assert sim_fast.events_processed == sim_ref.events_processed

    def test_run_until_matches_reference(self):
        fast_trace, ref_trace = [], []
        sim_fast = Simulator()
        _des_workload(sim_fast, fast_trace)
        sim_fast.run(until=0.3)

        sim_ref = Simulator()
        _des_workload(sim_ref, ref_trace)
        while len(sim_ref._queue) and sim_ref._queue.peek_time() <= 0.3:
            sim_ref.step()
        assert fast_trace == ref_trace
        assert sim_fast.now == 0.3


# ---------------------------------------------------------------------------
# Envelope fast path: payloads bit-identical, detection still armed
# ---------------------------------------------------------------------------

class TestTrustedEnvelopeFastPath:
    def test_fast_path_skips_checksum_but_keeps_envelope(self):
        ctx = IntegrityContext(config=IntegrityConfig())
        payload = np.arange(64.0)
        wire = ctx.outbound(payload, 0, 1)
        assert isinstance(wire, Envelope)
        assert wire.crc == TRUSTED_CRC
        assert wire.payload is payload          # zero-copy
        out, penalty = ctx.inbound(wire)
        assert out is payload and penalty == 0.0

    def test_trusted_crc_cannot_collide_with_real_checksums(self):
        assert TRUSTED_CRC < 0 <= checksum_payload(np.arange(8.0))

    def test_slow_path_still_taken_when_injector_armed(self):
        plan = FaultPlan.silent_corruption(0, message_p=1e-9)
        with telemetry.capture():
            ctx = IntegrityContext(CorruptionInjector(plan))
            wire = ctx.outbound(np.arange(8.0), 0, 1)
        assert wire.crc == checksum_payload(np.arange(8.0)) != TRUSTED_CRC

    def test_legacy_checksummed_envelope_still_verifies(self):
        ctx = IntegrityContext(config=IntegrityConfig())
        payload = np.arange(16.0)
        wire = Envelope(payload=payload, crc=checksum_payload(payload))
        out, penalty = ctx.inbound(wire)
        assert np.array_equal(out, payload) and penalty == 0.0

    def test_received_payloads_identical_with_and_without_verify(self):
        def pingpong(integrity):
            def fn(comm):
                data = np.linspace(0.0, 1.0, 257) * (comm.rank + 1)
                comm.send(data, dest=1 - comm.rank, tag=3)
                return comm.recv(source=1 - comm.rank, tag=3)

            return run_spmd(fn, 2, integrity=integrity)

        base = pingpong(None)
        trusted = pingpong(IntegrityContext(config=IntegrityConfig()))
        for b, t in zip(base, trusted):
            assert np.array_equal(b, t)
            assert b.dtype == t.dtype

    def test_fastpath_counter_moves_checksum_counter_stays(self):
        transport = Transport(2)
        ctx = IntegrityContext(config=IntegrityConfig())

        def fn(rank):
            comm = Communicator(transport, rank, integrity=ctx)
            for i in range(5):
                comm.send(np.arange(32.0), dest=1 - rank, tag=1)
                comm.recv(source=1 - rank, tag=1)

        import threading
        threads = [threading.Thread(target=fn, args=(r,)) for r in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for state in transport.states:
            assert state.envelope_fastpath == 10    # 5 sends + 5 recvs
            assert state.envelope_checksums == 0

    def test_armed_injector_corruption_still_detected(self):
        """The fast path must never swallow a real corruption."""
        plan = FaultPlan.silent_corruption(3, message_p=0.35)
        with telemetry.capture() as (_, registry):
            ctx = IntegrityContext(CorruptionInjector(plan))
            hits = 0
            for i in range(40):
                payload = np.arange(16.0) + i
                wire = ctx.outbound(payload, 0, 1)
                out, penalty = ctx.inbound(wire)
                assert np.array_equal(out, payload)   # repaired if hit
                hits += penalty > 0.0
        assert hits > 0
        from repro.resilience.integrity import corruption_totals
        injected, detected = corruption_totals(registry)
        assert injected == detected == hits


# ---------------------------------------------------------------------------
# Pooled gradient fusion: bitwise-identical to the concatenate reference
# ---------------------------------------------------------------------------

def _grads_model(seed):
    model = MLP([6, 13, 3], seed=seed)
    rng = np.random.default_rng(seed + 1)
    for p in model.parameters():
        p.grad = rng.normal(size=p.data.shape)
    return model


class TestPooledFusionBuffers:
    def test_fused_buffer_matches_concatenate_reference(self):
        model = _grads_model(0)
        opt = DistributedOptimizer(
            SGD(model.parameters(), lr=0.1),
            Communicator(Transport(1), 0))
        reference = _flatten_grads(opt.params)
        fused_1 = opt._fuse_grads()
        assert fused_1.dtype == reference.dtype
        assert np.array_equal(
            fused_1.view(np.uint64), reference.view(np.uint64))
        # Refill with new grads: same buffer object, still exact.
        rng = np.random.default_rng(9)
        for p in opt.params:
            p.grad = rng.normal(size=p.data.shape)
        fused_2 = opt._fuse_grads()
        assert fused_2 is fused_1
        assert np.array_equal(
            fused_2.view(np.uint64),
            _flatten_grads(opt.params).view(np.uint64))
        assert (opt.fusion_allocs, opt.fusion_reuses) == (1, 1)

    def test_missing_grads_fuse_as_zeros(self):
        model = _grads_model(0)
        opt = DistributedOptimizer(
            SGD(model.parameters(), lr=0.1),
            Communicator(Transport(1), 0))
        opt.params[1].grad = None
        assert np.array_equal(opt._fuse_grads(), _flatten_grads(opt.params))

    def test_scatter_matches_unflatten_reference(self):
        model = _grads_model(2)
        opt = DistributedOptimizer(
            SGD(model.parameters(), lr=0.1),
            Communicator(Transport(1), 0))
        buf = np.arange(float(sum(p.size for p in opt.params)))
        opt._scatter_grads(buf)
        pooled = [p.grad.copy() for p in opt.params]
        _unflatten_into_grads(opt.params, buf)
        for got, ref in zip(pooled, (p.grad for p in opt.params)):
            assert got.dtype == ref.dtype
            assert np.array_equal(got.view(np.uint64), ref.view(np.uint64))

    def test_training_bitwise_identical_to_unpooled_reference(self):
        """Full data-parallel runs: optimized synchronize vs a reference
        replicating the pre-pooling implementation, compared to the bit."""
        rng = np.random.default_rng(5)
        X = rng.normal(size=(64, 10))
        Y = rng.integers(0, 3, size=64)

        def train(comm, reference: bool):
            model = MLP([10, 17, 3], seed=7)
            broadcast_parameters(model, comm)
            opt = DistributedOptimizer(SGD(model.parameters(), lr=0.05),
                                       comm)
            losses = []
            for step in range(6):
                shard = np.arange(step % 2, len(X), comm.size * 2)
                shard = (shard + comm.rank * 2) % len(X)
                loss = cross_entropy(model(Tensor(X[shard])), Y[shard])
                opt.zero_grad()
                loss.backward()
                if reference:
                    # The pre-pooling synchronize, reproduced verbatim.
                    from repro.mpi import collectives
                    fused = _flatten_grads(opt.params)
                    wire = fused.copy()
                    collectives.ring_allreduce_inplace(
                        comm, wire, comm._next_coll_tag())
                    reduced = wire / comm.size
                    _unflatten_into_grads(opt.params, reduced)
                    opt.optimizer.step()
                else:
                    opt.step()
                losses.append(loss.item())
            return losses, {k: v.copy()
                            for k, v in model.state_dict().items()}

        pooled = run_spmd(lambda c: train(c, reference=False), 2)
        ref = run_spmd(lambda c: train(c, reference=True), 2)
        for (pl, pw), (rl, rw) in zip(pooled, ref):
            assert pl == rl                     # loss trajectory, exact
            assert set(pw) == set(rw)
            for key in pw:
                assert np.array_equal(pw[key].view(np.uint64),
                                      rw[key].view(np.uint64)), key

    def test_average_divide_in_place_matches_fresh_divide(self):
        arr = np.linspace(-3.0, 3.0, 97)
        expect = arr / 4
        got = arr.copy()
        np.divide(got, 4, out=got)
        assert np.array_equal(got.view(np.uint64), expect.view(np.uint64))


# ---------------------------------------------------------------------------
# Lazy tensor engine: ENGINE=lazy replays ENGINE=eager to the bit
# ---------------------------------------------------------------------------

def _bits(arr: np.ndarray) -> np.ndarray:
    return np.ascontiguousarray(arr).view(np.uint64)


def _assert_state_bitwise_equal(a: dict, b: dict) -> None:
    assert set(a) == set(b)
    for key in a:
        assert np.array_equal(_bits(a[key]), _bits(b[key])), key


class TestLazyEngineReplayPins:
    """Fusion elides buffers, never reassociates math: every workload
    below must produce bitwise-identical outputs under both engines."""

    def _run_both(self, workload):
        from repro.ml import engine
        with engine.engine("eager"):
            eager = workload()
        with engine.engine("lazy"):
            lazy = workload()
        return eager, lazy

    def test_mlp_training_loop_bitwise_identical(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(48, 12))
        Y = rng.integers(0, 3, size=48)

        def train():
            model = MLP([12, 19, 3], seed=4)
            opt = SGD(model.parameters(), lr=0.05)
            losses = []
            for step in range(6):
                lo = (step * 16) % 48
                loss = cross_entropy(model(Tensor(X[lo:lo + 16])),
                                     Y[lo:lo + 16])
                opt.zero_grad()
                loss.backward()
                opt.step()
                losses.append(loss.item())
            return losses, {k: v.copy()
                            for k, v in model.state_dict().items()}

        (el, ew), (ll, lw) = self._run_both(train)
        assert el == ll
        _assert_state_bitwise_equal(ew, lw)

    def test_gru_forward_bitwise_identical(self):
        from repro.ml.models import GruForecaster

        rng = np.random.default_rng(3)
        x = rng.normal(size=(4, 10, 6))

        def forward():
            model = GruForecaster(n_features=6, hidden=8, seed=2)
            model.eval()
            return model(Tensor(x)).numpy().copy()

        eager, lazy = self._run_both(forward)
        assert np.array_equal(_bits(eager), _bits(lazy))

    def test_conv_model_forward_bitwise_identical(self):
        from repro.ml.models import resnet_small

        rng = np.random.default_rng(8)
        x = rng.normal(size=(2, 3, 8, 8))

        def forward():
            model = resnet_small(in_channels=3, n_classes=4, seed=5)
            model.eval()
            return model(Tensor(x)).numpy().copy()

        eager, lazy = self._run_both(forward)
        assert np.array_equal(_bits(eager), _bits(lazy))

    def test_devices_agree_to_the_bit(self):
        from repro.ml import engine

        rng = np.random.default_rng(17)
        xs = rng.normal(size=(32, 32))

        def chain():
            x = Tensor(xs)
            return ((x * 3.0 + 0.5).tanh().sigmoid()
                    + (x @ x).relu()).sum(axis=0).numpy().copy()

        with engine.engine("lazy"):
            with engine.use_device("cpu"):
                on_cpu = chain()
            with engine.use_device("sim-gpu"):
                on_a100 = chain()
            with engine.use_device("sim-gpu:v100"):
                on_v100 = chain()
        assert np.array_equal(_bits(on_cpu), _bits(on_a100))
        assert np.array_equal(_bits(on_cpu), _bits(on_v100))

    def test_out_buffer_reuse_matches_fresh_allocation(self):
        """ufunc(..., out=dying_temp) is the only trick the fused
        executor plays; pin that it cannot perturb values."""
        rng = np.random.default_rng(23)
        x = rng.normal(size=(257,))
        fresh = np.exp(np.tanh(x * 2.0 + 1.0))
        reused = np.multiply(x, 2.0)
        np.add(reused, 1.0, out=reused)
        np.tanh(reused, out=reused)
        np.exp(reused, out=reused)
        assert np.array_equal(_bits(fresh), _bits(reused))
