"""Cross-cutting hypothesis property tests on system invariants.

These complement the per-module suites: each property is an invariant the
whole reproduction leans on (collective correctness, scheduler safety,
autograd linearity, storage conservation).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    BoosterModule,
    ClusterModule,
    DEEP_CM_NODE,
    DEEP_ESB_NODE,
    MSASystem,
    MsaScheduler,
    StorageModule,
    synthetic_workload_mix,
)
from repro.ml import Tensor
from repro.mpi import run_spmd
from repro.storage import ParallelFileSystem

GiB = 1024 ** 3


# ---------------------------------------------------------------------------
# MPI collectives vs NumPy ground truth
# ---------------------------------------------------------------------------

@given(
    ws=st.integers(min_value=1, max_value=5),
    n=st.integers(min_value=8, max_value=200),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=20, deadline=None)
def test_property_allreduce_equals_numpy_sum(ws, n, seed):
    data = np.random.default_rng(seed).normal(size=(ws, n))
    expected = data.sum(axis=0)

    def fn(comm):
        return comm.allreduce(data[comm.rank].copy())

    for out in run_spmd(fn, ws):
        np.testing.assert_allclose(out, expected, rtol=1e-10)


@given(ws=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=20, deadline=None)
def test_property_allgather_is_permutation_invariant_truth(ws, seed):
    values = np.random.default_rng(seed).integers(0, 100, size=ws).tolist()

    def fn(comm):
        return comm.allgather(values[comm.rank])

    outs = run_spmd(fn, ws)
    for out in outs:
        assert out == values


@given(ws=st.integers(min_value=2, max_value=5),
       root=st.integers(min_value=0, max_value=4),
       payload=st.integers(min_value=-10**6, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_property_bcast_delivers_root_value(ws, root, payload):
    root = root % ws

    def fn(comm):
        return comm.bcast(payload if comm.rank == root else None, root=root)

    assert run_spmd(fn, ws) == [payload] * ws


# ---------------------------------------------------------------------------
# scheduler safety
# ---------------------------------------------------------------------------

def _system():
    sys = MSASystem("prop")
    sys.add_module("cm", ClusterModule("CM", DEEP_CM_NODE, 6))
    sys.add_module("esb", BoosterModule("ESB", DEEP_ESB_NODE, 4))
    sys.add_module("sssm", StorageModule("S", capacity_PB=1.0))
    return sys


@given(n_jobs=st.integers(min_value=1, max_value=12),
       seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=20, deadline=None)
def test_property_scheduler_never_oversubscribes_nodes(n_jobs, seed):
    system = _system()
    sched = MsaScheduler(system)
    sched.submit_all(synthetic_workload_mix(n_jobs=n_jobs, seed=seed,
                                            mean_interarrival_s=100.0))
    report = sched.run()

    # Per module: at no instant do overlapping allocations exceed capacity,
    # and no node is double-booked.
    capacities = {k: m.n_nodes for k, m in system.compute_modules().items()}
    events = []
    for alloc in report.allocations:
        events.append((alloc.start, len(alloc.nodes), alloc.module_key,
                       alloc.nodes, +1))
        events.append((alloc.end, len(alloc.nodes), alloc.module_key,
                       alloc.nodes, -1))
    for key in capacities:
        in_use: dict[int, int] = {}
        # Releases (-1) sort before starts (+1) at equal timestamps: the
        # scheduler frees nodes before re-allocating them at the same t.
        timeline = sorted([e for e in events if e[2] == key],
                          key=lambda e: (e[0], e[4]))
        count = 0
        for _, n, _, nodes, sign in timeline:
            count += sign * n
            assert count <= capacities[key]
            for node in nodes:
                in_use[node] = in_use.get(node, 0) + sign
                assert in_use[node] in (0, 1)

    # Every submitted job completed, after its arrival.
    assert len(report.completion_times) == n_jobs
    for job in synthetic_workload_mix(n_jobs=n_jobs, seed=seed,
                                      mean_interarrival_s=100.0):
        assert report.completion_times[job.name] >= job.arrival_time


@given(n_jobs=st.integers(min_value=1, max_value=10),
       seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=15, deadline=None)
def test_property_phase_order_preserved(n_jobs, seed):
    sched = MsaScheduler(_system())
    jobs = synthetic_workload_mix(n_jobs=n_jobs, seed=seed)
    sched.submit_all(jobs)
    report = sched.run()
    per_job: dict[str, list] = {}
    for alloc in report.allocations:
        per_job.setdefault(alloc.job_name, []).append(alloc)
    for allocs in per_job.values():
        allocs.sort(key=lambda a: a.phase_index)
        for earlier, later in zip(allocs, allocs[1:]):
            assert later.start >= earlier.end - 1e-9


# ---------------------------------------------------------------------------
# autograd linearity
# ---------------------------------------------------------------------------

@given(
    x=hnp.arrays(np.float64, (6,), elements=st.floats(-3, 3,
                                                      allow_nan=False)),
    scale=st.floats(min_value=-5, max_value=5, allow_nan=False),
)
@settings(max_examples=60, deadline=None)
def test_property_gradient_scales_linearly(x, scale):
    a = Tensor(x.copy(), requires_grad=True)
    ((a * a).sum()).backward()
    base = a.grad.copy()
    b = Tensor(x.copy(), requires_grad=True)
    ((b * b).sum() * scale).backward()
    np.testing.assert_allclose(b.grad, base * scale, atol=1e-9)


@given(
    x=hnp.arrays(np.float64, (4,), elements=st.floats(-3, 3,
                                                      allow_nan=False)),
)
@settings(max_examples=60, deadline=None)
def test_property_sum_rule(x):
    """grad(f+g) = grad(f) + grad(g)."""
    def grad_of(builder):
        t = Tensor(x.copy(), requires_grad=True)
        builder(t).backward()
        return t.grad

    f = lambda t: (t * t).sum()
    g = lambda t: (t.tanh()).sum()
    combined = grad_of(lambda t: f(t) + g(t))
    np.testing.assert_allclose(combined, grad_of(f) + grad_of(g), atol=1e-9)


# ---------------------------------------------------------------------------
# storage conservation
# ---------------------------------------------------------------------------

@given(
    sizes=st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                   max_size=8),
    stripes=st.integers(min_value=1, max_value=16),
)
@settings(max_examples=40, deadline=None)
def test_property_pfs_usage_conserved(sizes, stripes):
    pfs = ParallelFileSystem("fs", n_targets=16)
    for i, gb in enumerate(sizes):
        pfs.create(f"/f{i}", gb * GiB, stripe_count=stripes)
    # Usage equals the sum of integer per-stripe shares.
    expected = sum((gb * GiB // min(stripes, 16)) * min(stripes, 16)
                   for gb in sizes)
    assert pfs.used_bytes == expected
    for i in range(len(sizes)):
        pfs.unlink(f"/f{i}")
    assert pfs.used_bytes == 0


@given(stripes=st.lists(st.integers(min_value=1, max_value=32), min_size=2,
                        max_size=6, unique=True))
@settings(max_examples=30, deadline=None)
def test_property_wider_stripes_never_slower(stripes):
    pfs = ParallelFileSystem("fs", n_targets=32)
    times = {}
    for s in stripes:
        handle = pfs.create(f"/s{s}", 64 * GiB, stripe_count=s)
        times[s] = pfs.read_time(handle)
    ordered = sorted(stripes)
    for a, b in zip(ordered, ordered[1:]):
        assert times[b] <= times[a] + 1e-12
