"""Quantum module: QUBO/Ising algebra (hypothesis roundtrips), device
topologies and budgets, the annealer, and the QSVM (E6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.quantum import (
    DWAVE_2000Q,
    DWAVE_ADVANTAGE,
    IsingModel,
    QSvmEnsemble,
    QuantumSVM,
    Qubo,
    SimulatedQuantumAnnealer,
    chimera_graph,
    pegasus_like_graph,
)
from repro.quantum.annealer import EmbeddingError
from repro.quantum.topology import graph_for

rng = np.random.default_rng(0)

qmatrix = hnp.arrays(np.float64, (5, 5),
                     elements=st.floats(-3, 3, allow_nan=False))
assignment = hnp.arrays(np.int64, (5,), elements=st.integers(0, 1))


class TestQubo:
    def test_energy_manual(self):
        Q = np.array([[1.0, 2.0], [0.0, -1.0]])
        qubo = Qubo(Q)
        assert qubo.energy(np.array([1.0, 1.0])) == pytest.approx(2.0)
        assert qubo.energy(np.array([1.0, 0.0])) == pytest.approx(1.0)
        assert qubo.energy(np.array([0.0, 0.0])) == 0.0

    def test_canonicalisation_folds_lower_triangle(self):
        a = Qubo(np.array([[0.0, 1.0], [1.0, 0.0]]))
        b = Qubo(np.array([[0.0, 2.0], [0.0, 0.0]]))
        x = np.array([1.0, 1.0])
        assert a.energy(x) == b.energy(x)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            Qubo(np.ones((2, 3)))

    def test_non_binary_assignment_rejected(self):
        with pytest.raises(ValueError):
            Qubo(np.eye(2)).energy(np.array([0.5, 1.0]))

    def test_batch_energies(self):
        qubo = Qubo(rng.normal(size=(4, 4)))
        X = rng.integers(0, 2, size=(10, 4)).astype(float)
        batch = qubo.energies(X)
        singles = [qubo.energy(x) for x in X]
        np.testing.assert_allclose(batch, singles)

    def test_interactions_count(self):
        Q = np.zeros((3, 3))
        Q[0, 1] = 1.0
        Q[1, 2] = 1.0
        assert Qubo(Q).n_interactions == 2

    @given(Q=qmatrix, x=assignment)
    @settings(max_examples=100, deadline=None)
    def test_property_energy_deltas_match_flips(self, Q, x):
        qubo = Qubo(Q)
        x = x.astype(float)
        deltas = qubo.energy_deltas(x)
        for k in range(5):
            flipped = x.copy()
            flipped[k] = 1.0 - flipped[k]
            assert deltas[k] == pytest.approx(
                qubo.energy(flipped) - qubo.energy(x), abs=1e-9)

    @given(Q=qmatrix, x=assignment)
    @settings(max_examples=100, deadline=None)
    def test_property_qubo_ising_roundtrip(self, Q, x):
        qubo = Qubo(Q)
        x = x.astype(float)
        s = 2.0 * x - 1.0
        ising = qubo.to_ising()
        assert ising.energy(s) == pytest.approx(qubo.energy(x), abs=1e-9)
        back = ising.to_qubo()
        assert back.energy(x) == pytest.approx(qubo.energy(x), abs=1e-9)


class TestIsing:
    def test_energy_manual(self):
        ising = IsingModel(h=np.array([1.0, -1.0]),
                           J=np.array([[0.0, 2.0], [0.0, 0.0]]))
        assert ising.energy(np.array([1.0, 1.0])) == pytest.approx(2.0)
        assert ising.energy(np.array([-1.0, 1.0])) == pytest.approx(-4.0)

    def test_spin_validation(self):
        ising = IsingModel(h=np.zeros(2), J=np.zeros((2, 2)))
        with pytest.raises(ValueError):
            ising.energy(np.array([0.0, 1.0]))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            IsingModel(h=np.zeros(2), J=np.zeros((3, 3)))


class TestTopology:
    def test_chimera_c16_is_2048_qubits(self):
        g = chimera_graph(16, 16, 4)
        assert g.number_of_nodes() == 2048
        # 2000Q-class coupler count: intra-cell 16/cell + inter-cell links.
        assert 5800 <= g.number_of_edges() <= 6200

    def test_chimera_cell_is_complete_bipartite(self):
        g = chimera_graph(1, 1, 4)
        assert g.number_of_nodes() == 8
        assert g.number_of_edges() == 16

    def test_pegasus_denser_than_chimera(self):
        c = chimera_graph(4, 4, 4)
        p = pegasus_like_graph(4)
        deg_c = 2 * c.number_of_edges() / c.number_of_nodes()
        deg_p = 2 * p.number_of_edges() / p.number_of_nodes()
        assert deg_p > deg_c * 1.3

    def test_device_budgets_match_paper(self):
        assert DWAVE_2000Q.n_qubits == 2048
        assert DWAVE_ADVANTAGE.n_qubits == 5000
        assert DWAVE_ADVANTAGE.n_couplers == 35000

    def test_advantage_embeds_larger_cliques(self):
        assert DWAVE_ADVANTAGE.max_clique > 2 * DWAVE_2000Q.max_clique

    def test_clique_capacity_checks(self):
        assert DWAVE_2000Q.fits_dense_problem(64)
        assert not DWAVE_2000Q.fits_dense_problem(65)
        with pytest.raises(ValueError):
            DWAVE_2000Q.chain_length_for_clique(100)

    def test_chain_length_grows_with_problem(self):
        assert DWAVE_2000Q.chain_length_for_clique(64) > \
            DWAVE_2000Q.chain_length_for_clique(8)

    def test_graph_for_families(self):
        assert graph_for(DWAVE_2000Q).number_of_nodes() == 2048
        assert graph_for(DWAVE_ADVANTAGE).number_of_nodes() == 2048  # proxy
        from repro.quantum.topology import DeviceTopology

        with pytest.raises(ValueError):
            graph_for(DeviceTopology("x", "hexagon", 1, 1, 1))

    def test_invalid_chimera_dims(self):
        with pytest.raises(ValueError):
            chimera_graph(0)


class TestAnnealer:
    def _annealer(self, device=DWAVE_2000Q, sweeps=150):
        return SimulatedQuantumAnnealer.for_device(device, sweeps=sweeps)

    def test_finds_ground_state_of_small_problem(self):
        # E(x) = (x0 + x1 - 1)^2 + (x2 - 1)^2, minimum -2 at x0+x1=1, x2=1.
        Q = np.zeros((3, 3))
        Q[0, 0] = Q[1, 1] = Q[2, 2] = -1.0
        Q[0, 1] = 2.0
        result = self._annealer().sample(Qubo(Q), num_reads=20, seed=1)
        assert result.best_energy == pytest.approx(-2.0)
        assert result.best[2] == 1.0
        assert result.best[0] + result.best[1] == 1.0

    def test_samples_sorted_by_energy(self):
        Q = rng.normal(size=(6, 6))
        result = self._annealer(sweeps=60).sample(Qubo(Q), num_reads=10, seed=2)
        assert (np.diff(result.energies) >= -1e-12).all()

    def test_deterministic_given_seed(self):
        Q = rng.normal(size=(5, 5))
        a = self._annealer(sweeps=50).sample(Qubo(Q), num_reads=5, seed=3)
        b = self._annealer(sweeps=50).sample(Qubo(Q), num_reads=5, seed=3)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_lowest_returns_distinct(self):
        Q = np.diag([-1.0, 0.1, 0.1])
        result = self._annealer(sweeps=80).sample(Qubo(Q), num_reads=20, seed=4)
        low = result.lowest(3)
        assert len({row.tobytes() for row in low}) == len(low)

    def test_dense_problem_beyond_clique_rejected(self):
        n = DWAVE_2000Q.max_clique + 4
        Q = rng.normal(size=(n, n))
        with pytest.raises(EmbeddingError):
            self._annealer().sample(Qubo(Q), num_reads=1)

    def test_advantage_accepts_what_2000q_rejects(self):
        n = DWAVE_2000Q.max_clique + 4
        Q = rng.normal(size=(n, n))
        annealer = self._annealer(device=DWAVE_ADVANTAGE, sweeps=10)
        result = annealer.sample(Qubo(Q), num_reads=1, seed=0)
        assert result.n_variables == n

    def test_sparse_problem_bounded_by_qubits(self):
        # Diagonal-only (no interactions): qubit budget applies, not clique.
        Q = np.diag(rng.normal(size=100))
        result = self._annealer(sweeps=5).sample(Qubo(Q), num_reads=1, seed=0)
        assert result.chain_length == 1

    def test_chain_accounting(self):
        n = 20
        Q = rng.normal(size=(n, n))
        result = self._annealer(sweeps=5).sample(Qubo(Q), num_reads=1, seed=0)
        assert result.physical_qubits == n * result.chain_length

    def test_invalid_reads(self):
        with pytest.raises(ValueError):
            self._annealer().sample(Qubo(np.eye(2)), num_reads=0)


class TestQsvm:
    def _data(self, n_per=12, seed=5):
        r = np.random.default_rng(seed)
        X = np.concatenate([r.normal(-1.2, 0.6, size=(n_per, 2)),
                            r.normal(1.2, 0.6, size=(n_per, 2))])
        y = np.array([-1.0] * n_per + [1.0] * n_per)
        return X, y

    def _qsvm(self, device=DWAVE_2000Q, **kw):
        annealer = SimulatedQuantumAnnealer.for_device(device, sweeps=80)
        defaults = dict(kernel="rbf", gamma=0.5, num_reads=8, n_solutions=3)
        defaults.update(kw)
        return QuantumSVM(annealer, **defaults)

    def test_capacity_reflects_device_and_encoding(self):
        assert self._qsvm().max_training_samples() == 32          # 64 / 2 bits
        assert self._qsvm(n_bits=4).max_training_samples() == 16
        adv = self._qsvm(device=DWAVE_ADVANTAGE)
        assert adv.max_training_samples() == 90                   # 180 / 2

    def test_learns_separable_data(self):
        X, y = self._data()
        qsvm = self._qsvm().fit(X, y)
        assert qsvm.score(X, y) > 0.85

    def test_over_capacity_forces_subsampling(self):
        X = np.zeros((40, 2))
        y = np.array([-1.0, 1.0] * 20)
        with pytest.raises(EmbeddingError):
            self._qsvm().fit(X, y)

    def test_qubo_size_is_samples_times_bits(self):
        X, y = self._data(n_per=6)
        qubo = self._qsvm(n_bits=3).build_qubo(X, y)
        assert qubo.n_variables == 12 * 3

    def test_qubo_energy_matches_svm_objective(self):
        """E(a) must equal the encoded dual objective for random bits."""
        X, y = self._data(n_per=4)
        qsvm = self._qsvm(n_bits=2, xi=1.0)
        qubo = qsvm.build_qubo(X, y)
        from repro.svm.kernels import rbf_kernel

        K = rbf_kernel(X, X, gamma=0.5)
        r = np.random.default_rng(0)
        for _ in range(10):
            bits = r.integers(0, 2, size=qubo.n_variables).astype(float)
            alphas = qsvm._decode(bits, len(y))
            ref = (0.5 * np.einsum("i,j,ij->", alphas * y, alphas * y,
                                   K + 2.0 * qsvm.xi)
                   - alphas.sum())
            assert qubo.energy(bits) == pytest.approx(ref, abs=1e-9)

    def test_label_validation(self):
        with pytest.raises(ValueError):
            self._qsvm().fit(np.ones((4, 2)), np.array([0.0, 1.0, 0.0, 1.0]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            self._qsvm().predict(np.ones((2, 2)))

    def test_parameter_validation(self):
        annealer = SimulatedQuantumAnnealer.for_device(DWAVE_2000Q)
        with pytest.raises(ValueError):
            QuantumSVM(annealer, n_bits=0)
        with pytest.raises(ValueError):
            QuantumSVM(annealer, base=1)


class TestQsvmEnsemble:
    def test_handles_data_beyond_device_capacity(self):
        r = np.random.default_rng(9)
        X = np.concatenate([r.normal(-1.2, 0.6, size=(60, 2)),
                            r.normal(1.2, 0.6, size=(60, 2))])
        y = np.array([-1.0] * 60 + [1.0] * 60)
        annealer = SimulatedQuantumAnnealer.for_device(DWAVE_2000Q, sweeps=60)
        ens = QSvmEnsemble(annealer, n_members=3, kernel="rbf", gamma=0.5,
                           num_reads=6, n_solutions=2).fit(X, y)
        assert len(ens.members_) == 3
        assert ens.score(X, y) > 0.8
        # Every member respected the device budget.
        for member in ens.members_:
            assert len(member.y_) <= member.max_training_samples()

    def test_validation(self):
        annealer = SimulatedQuantumAnnealer.for_device(DWAVE_2000Q)
        with pytest.raises(ValueError):
            QSvmEnsemble(annealer, n_members=0)
        with pytest.raises(RuntimeError):
            QSvmEnsemble(annealer).predict(np.ones((2, 2)))
