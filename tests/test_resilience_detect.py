"""The phi-accrual failure detector: bootstrap, flapping, suspicion
transitions, and a seeded property sweep.

Edge cases this file pins:

* **simulation start** — an endpoint that registers but never heartbeats
  must still grow suspicious against the *declared* expected interval
  (no observed gaps exist yet to model),
* **flapping** — a burst of heartbeats faster than ``min_interval_s``
  must not make the detector hair-triggered: the modelled mean is
  floored, so sub-millisecond bursts cannot turn a normal gap into a
  phi-8 alarm,
* **clock discipline** — a heartbeat earlier than the previous one is a
  bug in the caller, not a gap of negative length; it raises.
"""

import math

import numpy as np
import pytest

from repro import telemetry
from repro.resilience.detect import (
    LN10,
    PHI_CEILING,
    ComponentHealth,
    DetectorConfig,
    PhiAccrualDetector,
)


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"expected_interval_s": 0.0},
        {"expected_interval_s": -1.0},
        {"window": 0},
        {"min_interval_s": 0.0},
        {"threshold": 0.0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DetectorConfig(**kwargs)


class TestBootstrap:
    """Heartbeat gaps at simulation start: no history yet."""

    def test_registered_but_silent_grows_suspicious(self):
        det = PhiAccrualDetector(DetectorConfig(expected_interval_s=1.0))
        det.register("r0", now=0.0)
        assert det.phi("r0", 0.0) == 0.0
        # With no observed gaps the declared expectation is the model:
        # phi = silence / (expected * ln 10).
        assert det.phi("r0", 2.0) == pytest.approx(2.0 / LN10)
        assert det.suspect("r0", 100.0)

    def test_single_beat_still_uses_expected_interval(self):
        det = PhiAccrualDetector(DetectorConfig(expected_interval_s=0.5))
        det.register("r0", now=0.0)
        det.heartbeat("r0", 0.1)
        # One beat -> zero intervals observed; the bootstrap mean holds.
        assert det.mean_interval("r0") == 0.5

    def test_register_is_idempotent(self):
        det = PhiAccrualDetector()
        det.register("r0", now=0.0)
        det.heartbeat("r0", 1.0)
        det.register("r0", now=5.0)       # must not reset history
        ep_phi = det.phi("r0", 1.0)
        assert ep_phi == 0.0

    def test_unknown_endpoint_raises(self):
        det = PhiAccrualDetector()
        with pytest.raises(KeyError):
            det.phi("ghost", 1.0)


class TestPhiShape:
    def test_phi_zero_at_beat_and_linear_in_silence(self):
        det = PhiAccrualDetector(DetectorConfig(expected_interval_s=1.0))
        det.register("r0", now=0.0)
        for t in (1.0, 2.0, 3.0):
            det.heartbeat("r0", t)
        assert det.phi("r0", 3.0) == 0.0
        one = det.phi("r0", 4.0)
        two = det.phi("r0", 5.0)
        assert one == pytest.approx(1.0 / LN10)
        assert two == pytest.approx(2.0 * one)

    def test_phi_capped_at_ceiling(self):
        det = PhiAccrualDetector(DetectorConfig(expected_interval_s=1e-3,
                                                min_interval_s=1e-3))
        det.register("r0", now=0.0)
        assert det.phi("r0", 1e9) == PHI_CEILING

    def test_clock_backwards_raises(self):
        det = PhiAccrualDetector()
        det.heartbeat("r0", 5.0)
        with pytest.raises(ValueError):
            det.heartbeat("r0", 4.0)

    def test_window_bounds_history(self):
        cfg = DetectorConfig(window=4, expected_interval_s=1.0)
        det = PhiAccrualDetector(cfg)
        det.register("r0", now=0.0)
        # Long gaps first, then short ones that push them out.
        t = 0.0
        for gap in (10.0, 10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0):
            t += gap
            det.heartbeat("r0", t)
        assert det.mean_interval("r0") == pytest.approx(1.0)


class TestFlapping:
    def test_rapid_beats_cannot_hair_trigger(self):
        cfg = DetectorConfig(expected_interval_s=0.05, min_interval_s=1e-3,
                             threshold=6.0)
        det = PhiAccrualDetector(cfg)
        det.register("r0", now=0.0)
        # A flapping endpoint beats 100x faster than expected…
        t = 0.0
        for _ in range(50):
            t += 1e-6
            det.heartbeat("r0", t)
        # …but the floored mean keeps one expected-interval of silence
        # far below the suspicion threshold.
        assert det.mean_interval("r0") == cfg.min_interval_s
        assert not det.suspect("r0", t + 0.005)

    def test_suspicion_clears_on_next_beat(self):
        det = PhiAccrualDetector(DetectorConfig(expected_interval_s=0.1))
        det.register("r0", now=0.0)
        det.heartbeat("r0", 0.1)
        det.heartbeat("r0", 0.2)
        assert det.suspect("r0", 10.0)
        det.heartbeat("r0", 10.0)
        assert not det.suspect("r0", 10.0)
        # The 9.8 s gap is now *in* the window, widening the modelled
        # mean — so re-suspicion needs a proportionally longer silence.
        assert det.suspect("r0", 100.0)
        # Each suspect *transition* logs exactly once.
        assert len(det.suspicion_log) == 2

    def test_continued_silence_logs_once(self):
        det = PhiAccrualDetector(DetectorConfig(expected_interval_s=0.1))
        det.register("r0", now=0.0)
        det.heartbeat("r0", 0.1)
        det.heartbeat("r0", 0.2)
        for t in (5.0, 6.0, 7.0):
            assert det.suspect("r0", t)
        assert len(det.suspicion_log) == 1


class TestInventory:
    def test_forget_removes_endpoint(self):
        det = PhiAccrualDetector()
        det.register("a", 0.0)
        det.register("b", 0.0)
        det.forget("a")
        assert det.monitored() == ["b"]
        with pytest.raises(KeyError):
            det.phi("a", 1.0)

    def test_suspects_sorted_and_thresholded(self):
        det = PhiAccrualDetector(DetectorConfig(expected_interval_s=1.0))
        for key in ("b", "a", "c"):
            det.register(key, 0.0)
        det.heartbeat("c", 99.0)
        assert det.suspects(100.0) == ["a", "b"]

    def test_publish_exports_phi_gauges(self):
        det = PhiAccrualDetector(DetectorConfig(expected_interval_s=1.0))
        det.register("r0", 0.0)
        with telemetry.capture() as (_, registry):
            det.publish(registry, now=5.0, component="pool")
            phi = registry.value("health_suspicion_phi", component="pool",
                                 endpoint="r0")
        assert phi == pytest.approx(5.0 / LN10)


class TestComponentHealth:
    def test_publish_gauges(self):
        health = ComponentHealth(component="pfs:x", ok=True, degraded=True,
                                 detail="1 OST out", suspicion=2.5)
        with telemetry.capture() as (_, registry):
            health.publish(registry, now=0.0)
            assert registry.value("component_health_ok",
                                  component="pfs:x") == 1.0
            assert registry.value("component_health_degraded",
                                  component="pfs:x") == 1.0
            assert registry.value("health_suspicion_phi", component="pfs:x",
                                  endpoint="state") == 2.5


def _detector_properties(seed: int) -> None:
    """Invariants that must hold for every heartbeat schedule."""
    rng = np.random.default_rng(seed)
    cfg = DetectorConfig(
        expected_interval_s=float(rng.uniform(0.01, 1.0)),
        window=int(rng.integers(1, 32)),
        min_interval_s=float(rng.uniform(1e-4, 1e-2)),
        threshold=float(rng.uniform(1.0, 10.0)),
    )
    det = PhiAccrualDetector(cfg)
    det.register("ep", now=0.0)
    t = 0.0
    for _ in range(int(rng.integers(2, 40))):
        t += float(rng.exponential(cfg.expected_interval_s))
        det.heartbeat("ep", t)
        # Phi is exactly zero at the beat and non-negative always.
        assert det.phi("ep", t) == 0.0
    # Monotone in silence.
    silences = np.sort(rng.uniform(0.0, 100.0, size=8))
    phis = [det.phi("ep", t + s) for s in silences]
    assert all(b >= a for a, b in zip(phis, phis[1:]))
    assert all(0.0 <= p <= PHI_CEILING for p in phis)
    # The mean never models below the floor, so phi is bounded above by
    # silence / (floor * ln 10).
    for s, p in zip(silences, phis):
        assert p <= s / (cfg.min_interval_s * math.log(10.0)) + 1e-9
    # suspect() agrees with phi-vs-threshold at every probe point.
    for s in silences:
        assert det.suspect("ep", t + s) == (det.phi("ep", t + s)
                                            > cfg.threshold)


@pytest.mark.parametrize("seed", range(30))
def test_detector_properties(seed):
    _detector_properties(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(30, 250))
def test_detector_properties_sweep(seed):
    _detector_properties(seed)
