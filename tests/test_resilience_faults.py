"""The fault-injection layer itself: plans, the injector as simulated
events, event cancellation, degraded and unreliable links, and the
scheduler's crash/repair bookkeeping."""

import numpy as np
import pytest

from repro.core import JobStatus, schedule_workload
from repro.core.module import ClusterModule
from repro.core.hardware import DEEP_CM_NODE
from repro.resilience import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    partition_cut,
)
from repro.simnet import Link, LinkKind, Simulator, UnreliableLink
from repro.simnet.events import SimulationError


class TestEventCancellation:
    def test_cancelled_event_never_fires(self):
        sim = Simulator()
        fired = []
        evt = sim.timeout(5.0, value="x")
        evt.add_callback(lambda e: fired.append(e.value))
        evt.cancel()
        sim.run()
        assert fired == []
        assert evt.cancelled

    def test_cancelled_event_not_counted_as_processed(self):
        sim = Simulator()
        evt = sim.timeout(5.0)
        keep = sim.timeout(7.0)
        evt.cancel()
        sim.run()
        assert sim.now == 7.0

    def test_cancel_after_trigger_raises(self):
        sim = Simulator()
        evt = sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            evt.cancel()


class TestInjector:
    def _plan(self):
        return FaultPlan(seed=0, specs=(
            FaultSpec(kind=FaultKind.NODE_CRASH, time=10.0, module="cm",
                      node=2),
            FaultSpec(kind=FaultKind.STRAGGLER, time=20.0, module="esb",
                      node=0, magnitude=2.0),
            FaultSpec(kind=FaultKind.RANK_KILL, time=3, node=1),
        ))

    def test_faults_fire_as_simulated_events(self):
        sim = Simulator()
        injector = FaultInjector(self._plan())
        seen = []
        injector.on(FaultKind.NODE_CRASH, lambda s: seen.append((sim.now, s)))
        armed = injector.arm(sim)
        assert armed == 2          # RANK_KILL is not a clock event
        sim.run()
        assert [(t, s.kind) for t, s in injector.injected] == \
               [(10.0, FaultKind.NODE_CRASH), (20.0, FaultKind.STRAGGLER)]
        assert seen[0][0] == 10.0 and seen[0][1].node == 2

    def test_double_arm_rejected(self):
        injector = FaultInjector(self._plan())
        injector.arm(Simulator())
        with pytest.raises(RuntimeError):
            injector.arm(Simulator())

    def test_unreliable_wraps_only_with_drop_spec(self):
        link = Link.of_kind(LinkKind.INFINIBAND_EDR)
        plain = FaultInjector(self._plan())
        assert plain.unreliable(link) is link
        droppy = FaultInjector(FaultPlan(seed=3, specs=(
            FaultSpec(kind=FaultKind.MESSAGE_DROP, time=0.0, magnitude=0.2),)))
        wrapped = droppy.unreliable(link)
        assert isinstance(wrapped, UnreliableLink)
        assert wrapped.drop_probability == 0.2


class TestLinks:
    def test_degraded_link_slower(self):
        link = Link.of_kind(LinkKind.INFINIBAND_EDR)
        slow = link.degraded(4.0)
        assert slow.bandwidth_Bps == link.bandwidth_Bps / 4.0
        assert slow.transfer_time(1 << 20) > link.transfer_time(1 << 20)
        with pytest.raises(ValueError):
            link.degraded(0.5)

    def test_unreliable_link_deterministic(self):
        link = Link.of_kind(LinkKind.ETHERNET_100G)
        a = UnreliableLink(link, drop_probability=0.3, seed=7)
        b = UnreliableLink(link, drop_probability=0.3, seed=7)
        times_a = [a.transfer_time(1 << 16) for _ in range(50)]
        times_b = [b.transfer_time(1 << 16) for _ in range(50)]
        assert times_a == times_b
        assert a.drops == b.drops

    def test_unreliable_link_costs_at_least_base(self):
        link = Link.of_kind(LinkKind.ETHERNET_100G)
        lossy = UnreliableLink(link, drop_probability=0.5, seed=1)
        base = link.transfer_time(4096)
        assert all(lossy.transfer_time(4096) >= base for _ in range(20))
        assert lossy.expected_transfer_time(4096) > base

    def test_lossless_wrapper_matches_base(self):
        link = Link.of_kind(LinkKind.INFINIBAND_HDR)
        clean = UnreliableLink(link, drop_probability=0.0, seed=0)
        assert clean.transfer_time(1 << 20) == link.transfer_time(1 << 20)
        assert clean.expected_transfer_time(1 << 20) == \
               link.transfer_time(1 << 20)


class TestCrashRepairBookkeeping:
    def test_mark_down_blocks_allocation_until_repair(self):
        module = ClusterModule("CM", DEEP_CM_NODE, 4)
        module.mark_down(1)
        assert module.down_nodes == {1}
        assert module.free_nodes == 3
        taken = module.allocate(3)
        assert 1 not in taken
        module.release(taken)
        module.mark_up(1)
        assert module.free_nodes == 4

    def test_release_of_downed_node_does_not_resurrect_it(self):
        module = ClusterModule("CM", DEEP_CM_NODE, 4)
        taken = module.allocate(2)
        module.mark_down(taken[0])
        module.release(taken)
        assert taken[0] in module.down_nodes
        assert module.free_nodes == 3

    def test_allocate_avoids_suspect_nodes_when_possible(self):
        module = ClusterModule("CM", DEEP_CM_NODE, 4)
        taken = module.allocate(2, avoid={0, 1})
        assert set(taken) == {2, 3}
        # Avoidance is a preference, not a hard constraint.
        taken2 = module.allocate(2, avoid={0, 1})
        assert set(taken2) == {0, 1}

    def test_crash_during_run_requeues_and_completes(self, make_small_system,
                                                     gpu_job):
        plan = FaultPlan(seed=0, specs=tuple(
            FaultSpec(kind=FaultKind.NODE_CRASH, time=60.0, module="esb",
                      node=n, duration=120.0) for n in range(8)))
        report = schedule_workload(make_small_system(), [gpu_job(nodes=8)],
                                   fault_injector=FaultInjector(plan))
        assert report.job_status["train"] is JobStatus.COMPLETED
        res = report.resilience
        assert len(res.failures) >= 1
        assert res.total_retries >= 1
        assert len(res.recoveries) == len(res.requeues)
        assert res.mttr_s > 0
        # Repairs returned every node to service.
        assert len(res.repairs) == 8

    def test_summary_mentions_resilience(self, make_small_system, gpu_job):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(kind=FaultKind.NODE_CRASH, time=60.0, module="esb",
                      node=0, duration=120.0),))
        report = schedule_workload(make_small_system(), [gpu_job(nodes=8)],
                                   fault_injector=FaultInjector(plan))
        assert "faults injected" in report.summary()


class TestPlanValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.NODE_CRASH, time=-1.0)

    def test_slowdown_below_one_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.STRAGGLER, time=0.0, magnitude=0.5)

    def test_drop_probability_range(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.MESSAGE_DROP, time=0.0, magnitude=1.0)

    def test_parse_rejects_unknown_clause(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("seed=1,explode=cm:2", targets={"cm": 8})

    def test_parse_rejects_unknown_module(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("crash=gpu:1", targets={"cm": 8})


class TestChaosGrammar:
    """The chaos= clause, its round-trip, and the partition cut."""

    TARGETS = {"cm": 8, "esb": 8}

    def test_parse_matches_constructor(self):
        parsed = FaultPlan.parse("seed=7,chaos=partition:1,gray:2",
                                 targets=self.TARGETS)
        built = FaultPlan.chaos(7, targets=self.TARGETS,
                                n_partitions=1, n_gray=2)
        assert parsed.specs == built.specs

    def test_bare_count_defaults_to_one(self):
        plan = FaultPlan.parse("seed=3,chaos=partition", targets=self.TARGETS)
        assert len(plan.of_kind(FaultKind.NETWORK_PARTITION)) == 1
        assert len(plan.of_kind(FaultKind.GRAY_FAILURE)) == 0

    def test_chaos_clause_round_trips(self):
        plan = FaultPlan.chaos(11, targets=self.TARGETS,
                               n_partitions=2, n_gray=1)
        clause = plan.chaos_clause()
        assert clause == "chaos=partition:2,gray:1"
        replayed = FaultPlan.parse(f"seed={plan.seed},{clause}",
                                   targets=self.TARGETS)
        assert replayed.specs == plan.specs

    def test_chaos_clause_empty_without_chaos(self):
        plan = FaultPlan.random(1, {"cm": 8}, n_crashes=1)
        assert plan.chaos_clause() == ""
        assert not plan.has_chaos

    def test_has_chaos_flags_either_kind(self):
        gray_only = FaultPlan.chaos(1, self.TARGETS,
                                    n_partitions=0, n_gray=1)
        partition_only = FaultPlan.chaos(1, self.TARGETS,
                                         n_partitions=1, n_gray=0)
        assert gray_only.has_chaos and partition_only.has_chaos

    def test_chaos_composes_with_crash_clauses(self):
        plan = FaultPlan.parse("seed=5,crash=cm:1,chaos=gray:1,repair=10",
                               targets=self.TARGETS)
        assert len(plan.of_kind(FaultKind.NODE_CRASH)) == 1
        gray = plan.of_kind(FaultKind.GRAY_FAILURE)
        assert len(gray) == 1
        assert gray[0].duration == 10.0

    def test_unknown_chaos_fault_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.parse("chaos=zombie:1", targets=self.TARGETS)

    def test_windows_heal_before_horizon(self):
        plan = FaultPlan.parse("seed=9,chaos=partition:3,gray:3,horizon=100,"
                               "repair=40", targets=self.TARGETS)
        for spec in plan:
            assert spec.time + spec.duration <= 100.0

    def test_gray_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.GRAY_FAILURE, time=0.0, magnitude=0.5)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.GRAY_FAILURE, time=0.0,
                      magnitude=2.0, probability=1.5)

    def test_partition_spec_validation(self):
        for bad in (0.0, 1.0):
            with pytest.raises(ValueError):
                FaultSpec(kind=FaultKind.NETWORK_PARTITION, time=0.0,
                          probability=bad)


class TestPartitionCut:
    def _spec(self, probability=0.4):
        return FaultSpec(kind=FaultKind.NETWORK_PARTITION, time=3.0,
                         duration=1.0, probability=probability)

    def test_deterministic_and_order_independent(self):
        spec = self._spec()
        labels = [("esb", n) for n in range(8)]
        assert (partition_cut(7, spec, labels)
                == partition_cut(7, spec, reversed(labels)))

    def test_seed_changes_the_cut(self):
        spec = self._spec()
        labels = list(range(64))
        assert partition_cut(1, spec, labels) != partition_cut(2, spec, labels)

    @pytest.mark.parametrize("seed", range(30))
    def test_always_a_real_bipartition(self, seed):
        """Both sides non-empty whenever >= 2 labels exist, at extreme
        probabilities included."""
        labels = list(range(5))
        for probability in (0.01, 0.5, 0.99):
            far = partition_cut(seed, self._spec(probability), labels)
            assert 0 < len(far) < len(labels)

    def test_single_label_may_be_cut_off(self):
        far = partition_cut(0, self._spec(0.99), ["only"])
        assert far in (frozenset(), frozenset({"only"}))
