"""The integrity layer: checksums, envelopes, injection, verified allreduce.

Unit tests for :mod:`repro.resilience.integrity` plus small SPMD runs
exercising the comm-layer hooks end to end.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.mpi import run_spmd
from repro.resilience.faults import FaultKind, FaultPlan
from repro.resilience.integrity import (
    CorruptionInjector,
    Envelope,
    GradientCorruptionError,
    IntegrityConfig,
    IntegrityContext,
    checksum_payload,
    corruption_totals,
    flip_high_bits,
    linear_checksum,
    publish_undetected,
    verified_grad_allreduce,
)


class TestChecksums:
    def test_array_checksum_sees_dtype_and_shape(self):
        a = np.arange(6, dtype=np.float64)
        assert checksum_payload(a) == checksum_payload(a.copy())
        assert checksum_payload(a) != checksum_payload(a.reshape(2, 3))
        assert checksum_payload(a) != checksum_payload(a.astype(np.float32))

    def test_object_checksum_stable(self):
        assert checksum_payload({"k": 1}) == checksum_payload({"k": 1})
        assert checksum_payload({"k": 1}) != checksum_payload({"k": 2})

    def test_single_bitflip_changes_checksum(self):
        a = np.linspace(-1.0, 1.0, 32)
        assert checksum_payload(flip_high_bits(a, 7)) != checksum_payload(a)

    def test_linear_checksum_tracks_corruption(self):
        a = np.linspace(-1.0, 1.0, 1024)
        assert linear_checksum(a) == linear_checksum(a.copy())
        flipped = flip_high_bits(a, 100)
        delta = abs(linear_checksum(flipped) - linear_checksum(a))
        assert not np.isfinite(delta) or delta > 1e100


class TestFlipHighBits:
    def test_corrupts_exactly_one_element_detectably(self):
        a = np.linspace(-1.0, 1.0, 16)
        out = flip_high_bits(a, 5)
        diff = np.flatnonzero(out != a)
        assert list(diff) == [5]
        assert not np.isfinite(out[5]) or abs(out[5]) > 1e100

    def test_never_returns_input_unchanged(self):
        huge = np.full(4, np.finfo(np.float64).max)
        out = flip_high_bits(huge, 2)
        assert out[2] != huge[2]

    def test_input_not_mutated(self):
        a = np.ones(8)
        flip_high_bits(a, 0)
        assert np.all(a == 1.0)


class TestIntegrityConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            IntegrityConfig(tolerance=0.0)
        with pytest.raises(ValueError):
            IntegrityConfig(retransmit_penalty_s=-1.0)


class TestCorruptionInjector:
    def test_inactive_without_corruption_faults(self):
        assert not CorruptionInjector(FaultPlan(seed=0)).active
        plan = FaultPlan.silent_corruption(0, message_p=0.5)
        assert CorruptionInjector(plan).active

    def test_message_stream_deterministic(self):
        plan = FaultPlan.silent_corruption(7, message_p=0.3)

        def stream():
            with telemetry.capture():
                inj = CorruptionInjector(plan)
                return [inj.maybe_corrupt_message(
                            np.arange(4, dtype=np.float64), 0, 1)[1]
                        for _ in range(200)]

        first, second = stream(), stream()
        assert first == second
        assert any(first)       # p=0.3 over 200 draws must fire
        assert not all(first)

    def test_non_numeric_payloads_untouched(self):
        plan = FaultPlan.silent_corruption(0, message_p=1.0)
        with telemetry.capture():
            inj = CorruptionInjector(plan)
            obj, hit = inj.maybe_corrupt_message({"tag": 1}, 0, 1)
            assert obj == {"tag": 1} and not hit
            arr, hit = inj.maybe_corrupt_message(np.arange(3.0), 0, 1)
            assert hit and np.any(arr != np.arange(3.0))

    def test_gradient_spec_consumed_once(self):
        plan = FaultPlan.silent_corruption(0, gradient={5: [1]})
        with telemetry.capture():
            inj = CorruptionInjector(plan)
            a = np.ones(8)
            _, hit1 = inj.corrupt_contribution(a, 5, 1)
            _, hit2 = inj.corrupt_contribution(a, 5, 1)   # replayed step
            _, miss = inj.corrupt_contribution(a, 5, 2)   # other rank
        assert hit1 and not hit2 and not miss

    def test_injection_counted(self):
        plan = FaultPlan.silent_corruption(0, gradient={1: [0]})
        with telemetry.capture() as (_, registry):
            inj = CorruptionInjector(plan)
            inj.corrupt_contribution(np.ones(4), 1, 0)
            injected, detected = corruption_totals(registry)
        assert (injected, detected) == (1.0, 0.0)


class TestEnvelopes:
    def test_clean_roundtrip_no_penalty(self):
        ctx = IntegrityContext(config=IntegrityConfig())
        wire = ctx.outbound(np.arange(5.0), 0, 1)
        assert isinstance(wire, Envelope)
        with telemetry.capture():
            payload, penalty = ctx.inbound(wire)
        assert np.array_equal(payload, np.arange(5.0)) and penalty == 0.0

    def test_corruption_detected_and_repaired(self):
        plan = FaultPlan.silent_corruption(0, message_p=1.0)
        with telemetry.capture() as (_, registry):
            ctx = IntegrityContext(CorruptionInjector(plan))
            wire = ctx.outbound(np.arange(8.0), 0, 1)
            assert isinstance(wire, Envelope) and wire.clean is not None
            payload, penalty = ctx.inbound(wire)
            injected, detected = corruption_totals(registry)
        assert np.array_equal(payload, np.arange(8.0))
        assert penalty == IntegrityConfig().retransmit_penalty_s
        assert injected == detected == 1.0
        assert publish_undetected(registry) == 0.0

    def test_verify_off_lets_corruption_through(self):
        plan = FaultPlan.silent_corruption(0, message_p=1.0)
        with telemetry.capture() as (_, registry):
            ctx = IntegrityContext(CorruptionInjector(plan),
                                   IntegrityConfig(verify=False))
            wire = ctx.outbound(np.arange(8.0), 0, 1)
            assert not isinstance(wire, Envelope)
            assert np.any(wire != np.arange(8.0))
            assert publish_undetected(registry) == 1.0


class TestVerifiedAllreduce:
    def _spmd(self, fn, ws=4):
        with telemetry.capture() as (_, registry):
            out = run_spmd(fn, ws)
        return out, registry

    def test_clean_allreduce_matches_plain_sum(self):
        def fn(comm):
            local = np.full(16, float(comm.rank + 1))
            return verified_grad_allreduce(comm, local, None, 0,
                                           IntegrityConfig())

        out, _ = self._spmd(fn)
        expected = np.full(16, 10.0)
        for buf in out:
            np.testing.assert_allclose(buf, expected)

    def test_corrupted_contribution_raises_on_every_rank(self):
        plan = FaultPlan.silent_corruption(3, gradient={2: [1]})

        def fn(comm):
            inj = comm.bcast(
                CorruptionInjector(plan) if comm.rank == 0 else None)
            try:
                verified_grad_allreduce(comm, np.ones(32), inj, 2,
                                        IntegrityConfig())
            except GradientCorruptionError as exc:
                return exc.world_ranks
            return None

        out, registry = self._spmd(fn)
        assert out == [(1,)] * 4
        assert publish_undetected(registry) == 0.0

    def test_verify_off_returns_corrupted_sum(self):
        plan = FaultPlan.silent_corruption(3, gradient={2: [1]})

        def fn(comm):
            inj = comm.bcast(
                CorruptionInjector(plan) if comm.rank == 0 else None)
            return verified_grad_allreduce(comm, np.ones(32), inj, 2,
                                           IntegrityConfig(verify=False))

        out, registry = self._spmd(fn)
        assert any(not np.all(np.asarray(buf) == 4.0) for buf in out)
        assert publish_undetected(registry) > 0.0


class TestCommIntegration:
    def test_spmd_messages_survive_bitflips(self):
        """With verification on, a bitflip-riddled run equals a clean run."""
        def fn(comm):
            acc = np.zeros(8)
            for _ in range(5):
                acc = comm.allreduce(acc + comm.rank)
            return acc

        clean = run_spmd(fn, 4)
        plan = FaultPlan.silent_corruption(1, message_p=0.2)
        with telemetry.capture() as (_, registry):
            ctx = IntegrityContext(CorruptionInjector(plan))
            noisy = run_spmd(fn, 4, integrity=ctx)
            injected, detected = corruption_totals(registry)
        assert injected > 0, "0.2 over dozens of messages must fire"
        assert detected == injected
        for a, b in zip(clean, noisy):
            np.testing.assert_array_equal(a, b)


class TestFaultPlanCorruption:
    def test_silent_corruption_accessors(self):
        plan = FaultPlan.silent_corruption(
            0, message_p=0.05, gradient={4: [2, 0]},
            checkpoint_rot=[(6, "nam")])
        assert plan.message_bitflip_probability == 0.05
        assert plan.gradient_corruptions_at_step(4) == (0, 2)
        assert plan.gradient_corruptions_at_step(5) == ()
        rots = plan.checkpoint_rots_at_step(6)
        assert len(rots) == 1 and rots[0].module == "nam"
        assert plan.has_corruption

    def test_parse_bitflip_clause(self):
        plan = FaultPlan.parse("seed=3,bitflip=0.01")
        assert plan.message_bitflip_probability == 0.01
        assert plan.has_corruption

    def test_merged_keeps_both(self):
        a = FaultPlan.silent_corruption(0, message_p=0.1)
        b = FaultPlan.silent_corruption(9, gradient={2: [1]})
        merged = a.merged(b)
        assert merged.seed == 0
        assert merged.message_bitflip_probability == 0.1
        assert merged.gradient_corruptions_at_step(2) == (1,)
