"""Property tests for the fault-injection subsystem.

Each seed drives a different deterministic fault plan against the small
MSA system and checks invariants that must hold for *every* plan:

* **no job lost** — every submitted job ends in a terminal state
  (completed or permanently failed); nothing stays pending/requeued,
* **no node double-booked** — per (module, node), allocation intervals
  never overlap, even across crash/repair/requeue cycles,
* **retried jobs terminate** — attempts are bounded by the retry policy,
* **backoff monotone** — successive requeue delays never shrink,
* **conservation** — all nodes free after the run, utilisation in [0, 1].

The default sweep keeps CI fast; the 200-seed sweep runs under
``-m slow`` (see ``.github/workflows/ci.yml``).
"""

import numpy as np
import pytest

from repro.core import JobStatus, schedule_workload, synthetic_workload_mix
from repro.resilience import (
    NO_RETRY,
    FaultInjector,
    FaultKind,
    FaultPlan,
    RetryPolicy,
)

RETRY = RetryPolicy(max_retries=3, base_delay_s=20.0, backoff_factor=2.0,
                    jitter=0.25, seed=0)


def _run_faulted(seed, make_small_system, make_fault_plan,
                 retry_policy=RETRY):
    """One seeded run: derive plan shape from the seed, schedule, report."""
    rng = np.random.default_rng(seed)
    plan = make_fault_plan(
        seed=seed,
        horizon_s=float(rng.uniform(1800.0, 7200.0)),
        n_crashes=int(rng.integers(0, 4)),
        n_stragglers=int(rng.integers(0, 3)),
        n_degrades=int(rng.integers(0, 2)),
        repair_s=float(rng.uniform(120.0, 900.0)),
        slowdown=float(rng.uniform(1.5, 4.0)),
    )
    system = make_small_system()
    jobs = synthetic_workload_mix(n_jobs=int(rng.integers(4, 10)), seed=seed)
    report = schedule_workload(system, jobs,
                               fault_injector=FaultInjector(plan),
                               retry_policy=retry_policy)
    return system, jobs, report


def _assert_invariants(system, jobs, report, retry_policy=RETRY):
    # No job lost: every submitted job is terminal, and the terminal sets
    # partition the workload.
    assert set(report.job_status) == {j.name for j in jobs}
    assert all(s.terminal for s in report.job_status.values())
    completed = set(report.completion_times)
    failed = set(report.failed_jobs)
    assert completed | failed == {j.name for j in jobs}
    assert not completed & failed

    # No node double-booked: per (module, node), intervals are disjoint.
    by_node: dict[tuple, list] = {}
    for alloc in report.allocations:
        assert alloc.end >= alloc.start
        for node in alloc.nodes:
            by_node.setdefault((alloc.module_key, node), []).append(
                (alloc.start, alloc.end))
        # And no allocation holds the same node twice.
        assert len(set(alloc.nodes)) == len(alloc.nodes)
    for intervals in by_node.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1, f"overlap: [{s1},{e1}) and [{s2},{e2})"

    # Retried jobs eventually terminal with bounded attempts.
    res = report.resilience
    assert res is not None
    for job_name, retries in res.retries_per_job().items():
        assert retries <= retry_policy.max_retries
        assert report.job_status[job_name].terminal

    # Backoff monotone non-decreasing per job.
    for job_name in res.retries_per_job():
        delays = res.backoff_schedule(job_name)
        assert all(b >= a for a, b in zip(delays, delays[1:])), delays
        assert all(d >= 0 for d in delays)

    # Conservation: every node back in the free pool, sane accounting.
    for module in system.compute_modules().values():
        assert module.free_nodes == module.n_nodes
        assert not module.down_nodes
    for util in report.module_utilisation.values():
        assert 0.0 <= util <= 1.0
    assert res.lost_node_seconds >= 0.0
    assert res.mttr_s is None or res.mttr_s >= 0.0


@pytest.mark.parametrize("seed", range(30))
def test_invariants_small_sweep(seed, make_small_system, make_fault_plan):
    system, jobs, report = _run_faulted(seed, make_small_system,
                                        make_fault_plan)
    _assert_invariants(system, jobs, report)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(30, 250))
def test_invariants_full_sweep(seed, make_small_system, make_fault_plan):
    system, jobs, report = _run_faulted(seed, make_small_system,
                                        make_fault_plan)
    _assert_invariants(system, jobs, report)


@pytest.mark.parametrize("seed", [0, 7, 19])
def test_fault_runs_replay_deterministically(seed, make_small_system,
                                             make_fault_plan):
    _, _, r1 = _run_faulted(seed, make_small_system, make_fault_plan)
    _, _, r2 = _run_faulted(seed, make_small_system, make_fault_plan)
    assert r1.makespan == r2.makespan
    assert r1.completion_times == r2.completion_times
    assert r1.job_status == r2.job_status
    assert len(r1.resilience.failures) == len(r2.resilience.failures)


def test_no_retry_policy_fails_permanently(make_small_system, gpu_job):
    """With retries disabled, a crashed phase's job fails terminally."""
    plan = FaultPlan.random(seed=1, targets={"esb": 8}, horizon_s=3600.0,
                            n_crashes=8, repair_s=1e7)
    report = schedule_workload(make_small_system(), [gpu_job(nodes=8)],
                               fault_injector=FaultInjector(plan),
                               retry_policy=NO_RETRY)
    if report.failed_jobs:  # a crash landed on the running phase
        assert report.job_status["train"] is JobStatus.FAILED
        assert report.resilience.retries_per_job().get("train", 0) == 0


def test_zero_cost_when_off(make_small_system):
    """Injector with an empty plan must not perturb the schedule at all."""
    jobs = synthetic_workload_mix(n_jobs=10, seed=3)
    plain = schedule_workload(make_small_system(),
                              synthetic_workload_mix(n_jobs=10, seed=3))
    armed = schedule_workload(make_small_system(), jobs,
                              fault_injector=FaultInjector(FaultPlan.none()),
                              retry_policy=RETRY)
    assert plain.makespan == armed.makespan
    assert plain.completion_times == armed.completion_times
    assert [(a.job_name, a.module_key, a.nodes, a.start, a.end)
            for a in plain.allocations] == \
           [(a.job_name, a.module_key, a.nodes, a.start, a.end)
            for a in armed.allocations]
    assert plain.energy_total_joules == armed.energy_total_joules


class TestRetryPolicyProperties:
    @pytest.mark.parametrize("seed", range(20))
    def test_delays_monotone_for_random_policies(self, seed):
        rng = np.random.default_rng(seed)
        jitter = float(rng.uniform(0.0, 0.9))
        policy = RetryPolicy(
            max_retries=int(rng.integers(1, 8)),
            base_delay_s=float(rng.uniform(1.0, 120.0)),
            backoff_factor=float(rng.uniform(1.0 + jitter, 4.0)),
            jitter=jitter,
            seed=seed,
        )
        delays = policy.delays(key="job")
        assert len(delays) == policy.max_retries
        assert all(b >= a for a, b in zip(delays, delays[1:]))
        assert all(0 < d <= policy.max_delay_s for d in delays)

    def test_jitter_depends_on_key_not_call_order(self):
        policy = RetryPolicy(max_retries=4, jitter=0.5, backoff_factor=2.0)
        assert policy.delays("a") == policy.delays("a")
        assert policy.delays("a") != policy.delays("b")

    def test_factor_below_one_plus_jitter_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=1.1, jitter=0.25)


class TestFaultPlanProperties:
    @pytest.mark.parametrize("seed", range(15))
    def test_plans_are_reproducible_and_sorted(self, seed, make_fault_plan):
        p1 = make_fault_plan(seed=seed, n_crashes=3, n_stragglers=2,
                             n_degrades=1)
        p2 = make_fault_plan(seed=seed, n_crashes=3, n_stragglers=2,
                             n_degrades=1)
        assert p1.specs == p2.specs
        times = [s.time for s in p1]
        assert times == sorted(times)

    def test_different_seeds_differ(self, make_fault_plan):
        assert make_fault_plan(seed=0, n_crashes=3).specs != \
               make_fault_plan(seed=1, n_crashes=3).specs

    def test_parse_grammar(self):
        plan = FaultPlan.parse("seed=7,crash=cm:2,straggler=esb:1,drop=0.05",
                               targets={"cm": 8, "esb": 8})
        assert plan.seed == 7
        assert len(plan.of_kind(FaultKind.NODE_CRASH)) == 2
        assert len(plan.of_kind(FaultKind.STRAGGLER)) == 1
        assert len(plan.of_kind(FaultKind.MESSAGE_DROP)) == 1
