"""Elastic training recovery drills: rank kills, checkpoint-restart,
NAM-corruption fallback.

The central claim: a data-parallel run that loses ranks mid-training and
restarts from its latest checkpoint reproduces the loss trajectory of the
same-seed unfailed run (to floating-point tolerance — shrinking the ring
reorders the allreduce summation).
"""

import numpy as np
import pytest

from repro.distributed import (
    ElasticRecovery,
    global_batch_indices,
    run_elastic_training,
)
from repro.ml.models import MLP
from repro.mpi import SpmdFailure, run_spmd
from repro.resilience import CheckpointPolicy, FaultPlan
from repro.storage import NetworkAttachedMemory, ParallelFileSystem
from repro.storage.checkpoint import CheckpointError, CheckpointManager

_rng = np.random.default_rng(0)
X = np.concatenate([_rng.normal(-2, 1, size=(64, 2)),
                    _rng.normal(2, 1, size=(64, 2))])
Y = np.array([0] * 64 + [1] * 64)


def _factory():
    return MLP([2, 8, 2], seed=3)


def _manager(**kwargs):
    return CheckpointManager(
        nam=NetworkAttachedMemory(capacity_GB=1),
        pfs=ParallelFileSystem("fs", n_targets=4), **kwargs)


def _train(n_steps=12, world_size=4, seed=5, **kwargs):
    return run_elastic_training(
        _factory, X, Y, n_steps=n_steps, batch_size=16,
        world_size=world_size, lr=0.05, seed=seed, **kwargs)


class TestGlobalBatches:
    def test_batches_world_size_invariant(self):
        a = global_batch_indices(128, 16, step=3, seed=9)
        b = global_batch_indices(128, 16, step=3, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_batches_differ_by_step_and_seed(self):
        a = global_batch_indices(128, 16, step=3, seed=9)
        assert not np.array_equal(a, global_batch_indices(128, 16, 4, 9))
        assert not np.array_equal(a, global_batch_indices(128, 16, 3, 10))

    def test_oversized_batch_rejected(self):
        with pytest.raises(ValueError):
            global_batch_indices(10, 11, step=0, seed=0)


class TestRankKillRecovery:
    def test_kill_mid_run_resumes_from_latest_checkpoint(self):
        baseline = _train()
        faulted = _train(
            fault_plan=FaultPlan.rank_kills(seed=5, kills={7: [1, 3]}),
            checkpoint_manager=_manager(),
            checkpoint_policy=CheckpointPolicy(every_steps=4, replicate=True))
        assert faulted.final_world_size == 2
        [rec] = faulted.recoveries
        assert rec == ElasticRecovery(
            failed_step=7, dead_world_ranks=(1, 3), restored_step=4,
            restored_from="nam", world_size_after=2)
        assert rec.steps_lost == 3

    def test_loss_trajectory_matches_unfailed_run(self):
        baseline = _train()
        faulted = _train(
            fault_plan=FaultPlan.rank_kills(seed=5, kills={7: [1, 3]}),
            checkpoint_manager=_manager(),
            checkpoint_policy=CheckpointPolicy(every_steps=4))
        assert len(faulted.losses) == len(baseline.losses) == 12
        np.testing.assert_allclose(faulted.losses, baseline.losses,
                                   atol=1e-8)
        for key in baseline.final_state:
            np.testing.assert_allclose(faulted.final_state[key],
                                       baseline.final_state[key], atol=1e-8)

    def test_kill_of_rank_zero_survivable(self):
        faulted = _train(
            fault_plan=FaultPlan.rank_kills(seed=5, kills={5: [0]}),
            checkpoint_manager=_manager(),
            checkpoint_policy=CheckpointPolicy(every_steps=2))
        baseline = _train()
        assert faulted.final_world_size == 3
        assert faulted.recoveries[0].restored_step == 4
        np.testing.assert_allclose(faulted.losses, baseline.losses,
                                   atol=1e-8)

    def test_multiple_failures_accumulate(self):
        faulted = _train(
            n_steps=14, world_size=6,
            fault_plan=FaultPlan.rank_kills(seed=5, kills={4: [5], 9: [0, 2]}),
            checkpoint_manager=_manager(),
            checkpoint_policy=CheckpointPolicy(every_steps=3))
        baseline = _train(n_steps=14, world_size=6)
        assert faulted.final_world_size == 3
        assert [r.failed_step for r in faulted.recoveries] == [4, 9]
        assert faulted.steps_lost == (4 - 3) + (9 - 9)
        np.testing.assert_allclose(faulted.losses, baseline.losses,
                                   atol=1e-8)

    def test_kill_without_checkpointing_continues_from_live_weights(self):
        faulted = _train(
            fault_plan=FaultPlan.rank_kills(seed=5, kills={6: [2]}))
        assert faulted.final_world_size == 3
        assert faulted.recoveries[0].restored_from == "none"
        assert faulted.recoveries[0].steps_lost == 0
        assert len(faulted.losses) == 12
        # No rollback: the trajectory still matches (weights were already
        # replica-consistent when the rank left).
        np.testing.assert_allclose(faulted.losses, _train().losses,
                                   atol=1e-8)

    def test_killing_every_rank_is_an_error(self):
        with pytest.raises(SpmdFailure):
            _train(world_size=2,
                   fault_plan=FaultPlan.rank_kills(seed=5, kills={3: [0, 1]}),
                   checkpoint_manager=_manager())


class TestCheckpointFallback:
    def test_corrupt_nam_falls_back_to_pfs_replica(self):
        class BitRottingNam(CheckpointManager):
            """NAM copies decay right after each write."""
            def save(self, name, step, state, target=None, replicate=False):
                t = super().save(name, step, state, target=target,
                                 replicate=replicate)
                self.corrupt(name, target="nam")
                return t

        mgr = BitRottingNam(nam=NetworkAttachedMemory(capacity_GB=1),
                            pfs=ParallelFileSystem("fs", n_targets=4))
        faulted = _train(
            fault_plan=FaultPlan.rank_kills(seed=5, kills={7: [1]}),
            checkpoint_manager=mgr,
            checkpoint_policy=CheckpointPolicy(every_steps=4, replicate=True))
        assert faulted.recoveries[0].restored_from == "pfs"
        np.testing.assert_allclose(faulted.losses, _train().losses,
                                   atol=1e-8)

    def test_no_fallback_policy_propagates_corruption(self):
        mgr = _manager()
        mgr.save("m", step=4, state={"w": np.ones(8)}, replicate=True)
        mgr.corrupt("m", target="nam")
        policy = CheckpointPolicy(every_steps=4, fallback=False)
        with pytest.raises(CheckpointError):
            mgr.restore_with_fallback("m", policy)
        # The same corruption *with* fallback restores cleanly from PFS.
        state, step, _, target = mgr.restore_with_fallback(
            "m", CheckpointPolicy(every_steps=4))
        assert (step, target) == (4, "pfs")
        np.testing.assert_array_equal(state["w"], np.ones(8))

    def test_prefer_pfs_policy_reverses_restore_order(self):
        mgr = _manager()
        mgr.save("m", step=1, state={"w": np.zeros(4)}, replicate=True)
        _, _, _, target = mgr.restore_with_fallback(
            "m", CheckpointPolicy(prefer="pfs"))
        assert target == "pfs"


class TestShrink:
    def test_shrink_renumbers_survivors(self):
        def fn(comm):
            new = comm.shrink([1])
            if new is None:
                return ("dead", comm.rank)
            return ("alive", comm.rank, new.rank, new.size)

        assert run_spmd(fn, 3) == [
            ("alive", 0, 0, 2), ("dead", 1), ("alive", 2, 1, 2)]

    def test_shrunk_comm_still_collective(self):
        def fn(comm):
            new = comm.shrink([0, 2])
            if new is None:
                return None
            return new.allreduce(new.rank + 1)

        assert run_spmd(fn, 4) == [None, 3, None, 3]

    def test_shrink_everyone_rejected(self):
        def fn(comm):
            comm.shrink(list(range(comm.size)))

        with pytest.raises(SpmdFailure):
            run_spmd(fn, 2)

    def test_shrink_rank_out_of_range_rejected(self):
        def fn(comm):
            comm.shrink([comm.size])

        with pytest.raises(SpmdFailure):
            run_spmd(fn, 2)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8))
def test_random_kill_schedules_always_recover(seed):
    """Sweep: random kill steps/victims; trajectory always reproduced."""
    rng = np.random.default_rng(seed)
    world = 4
    n_steps = 10
    step = int(rng.integers(1, n_steps))
    victim = int(rng.integers(0, world))
    faulted = _train(
        n_steps=n_steps, world_size=world, seed=seed,
        fault_plan=FaultPlan.rank_kills(seed=seed, kills={step: [victim]}),
        checkpoint_manager=_manager(),
        checkpoint_policy=CheckpointPolicy(every_steps=2, replicate=True))
    baseline = _train(n_steps=n_steps, world_size=world, seed=seed)
    assert faulted.final_world_size == world - 1
    np.testing.assert_allclose(faulted.losses, baseline.losses, atol=1e-8)
