"""Edge cases of the retry policy: boundary attempts, jitter bounds, caps.

The headline regression here: ``delay()`` for a huge attempt number used
to raise ``OverflowError`` (the float exponential blows past 1e308 before
``min(..., max_delay_s)`` could cap it); it must return the cap instead.
"""

import pytest

from repro.resilience.retry import NO_RETRY, RetryBudget, RetryPolicy


class TestShouldRetry:
    def test_boundary_at_max(self):
        policy = RetryPolicy(max_retries=3)
        assert policy.should_retry(3)
        assert not policy.should_retry(4)

    def test_zero_attempts_always_allowed(self):
        assert RetryPolicy(max_retries=0).should_retry(0)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy().should_retry(-1)

    def test_no_retry_policy(self):
        assert not NO_RETRY.should_retry(1)
        assert NO_RETRY.delays() == []


class TestDelayBoundaries:
    def test_attempt_must_be_one_based(self):
        policy = RetryPolicy()
        with pytest.raises(ValueError):
            policy.delay(0)
        with pytest.raises(ValueError):
            policy.delay(-5)

    def test_huge_attempt_returns_cap_not_overflow(self):
        policy = RetryPolicy()
        assert policy.delay(10_000) == policy.max_delay_s
        assert policy.delay(1 << 20) == policy.max_delay_s

    def test_cap_is_exact_at_crossover(self):
        policy = RetryPolicy(base_delay_s=1.0, backoff_factor=2.0,
                             jitter=0.0, max_delay_s=1000.0)
        # 2**9 = 512 < 1000 < 2**10 = 1024.
        assert policy.delay(10) == 512.0
        assert policy.delay(11) == 1000.0
        assert policy.delay(100) == 1000.0

    def test_unit_backoff_factor_never_overflows(self):
        policy = RetryPolicy(backoff_factor=1.0, jitter=0.0,
                             base_delay_s=5.0)
        assert policy.delay(10_000_000) == 5.0


class TestJitterBounds:
    def test_delay_within_jitter_envelope(self):
        policy = RetryPolicy(max_retries=8, base_delay_s=2.0,
                             backoff_factor=2.0, jitter=0.25, seed=3)
        for attempt in range(1, 9):
            raw = 2.0 * 2.0 ** (attempt - 1)
            d = policy.delay(attempt, key="job-a")
            assert raw <= d < raw * 1.25
            assert d <= policy.max_delay_s

    def test_zero_jitter_is_exact_exponential(self):
        policy = RetryPolicy(jitter=0.0, base_delay_s=3.0,
                             backoff_factor=3.0)
        assert policy.delays() == [3.0, 9.0, 27.0]

    def test_deterministic_per_seed_and_key(self):
        a = RetryPolicy(seed=7).delays(key="job")
        b = RetryPolicy(seed=7).delays(key="job")
        c = RetryPolicy(seed=8).delays(key="job")
        d = RetryPolicy(seed=7).delays(key="other")
        assert a == b
        assert a != c and a != d

    def test_delays_non_decreasing(self):
        policy = RetryPolicy(max_retries=12, jitter=0.25, seed=11,
                             max_delay_s=500.0)
        schedule = policy.delays(key="j")
        assert schedule == sorted(schedule)
        assert len(schedule) == 12


class TestValidation:
    def test_zero_base_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.0)

    def test_negative_base_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)

    def test_factor_must_cover_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=1.1, jitter=0.25)

    def test_zero_max_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_delay_s=0.0)


class TestRetryBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(burst=0.5)
        with pytest.raises(ValueError):
            RetryBudget(floor=-1.0)

    def test_starts_at_floor(self):
        budget = RetryBudget(ratio=0.1, burst=20.0, floor=5.0)
        assert budget.tokens == 5.0
        assert not budget.exhausted

    def test_requests_earn_ratio_capped_at_burst(self):
        budget = RetryBudget(ratio=0.5, burst=10.0, floor=0.0)
        budget.note_request(4)
        assert budget.tokens == pytest.approx(2.0)
        budget.note_request(1000)
        assert budget.tokens == 10.0      # burst cap, not 502
        with pytest.raises(ValueError):
            budget.note_request(-1)

    def test_try_spend_refuses_when_dry(self):
        budget = RetryBudget(ratio=0.1, burst=20.0, floor=2.0)
        assert budget.try_spend()
        assert budget.try_spend()
        assert budget.exhausted
        assert not budget.try_spend()     # pool dry: optional work refused
        assert budget.refused == 1
        assert budget.spent == 2.0
        assert budget.tokens == 0.0       # a refusal costs nothing

    def test_spend_forced_overdrafts(self):
        budget = RetryBudget(ratio=0.1, burst=20.0, floor=1.0)
        budget.spend_forced(3.0)          # mandatory failover: never refused
        assert budget.tokens == -2.0
        assert budget.in_overdraft
        assert budget.forced_overdraft == 2.0
        # The high-water mark sticks even after the budget recovers.
        budget.note_request(1000)
        assert not budget.in_overdraft
        assert budget.forced_overdraft == 2.0

    def test_earning_restores_refused_spending(self):
        budget = RetryBudget(ratio=1.0, burst=5.0, floor=0.0)
        assert not budget.try_spend()
        budget.note_request(2)
        assert budget.try_spend()
        assert budget.refused == 1 and budget.spent == 1.0

    def test_zero_ratio_never_earns(self):
        budget = RetryBudget(ratio=0.0, burst=5.0, floor=0.0)
        budget.note_request(10_000)
        assert budget.tokens == 0.0
        assert not budget.try_spend()
