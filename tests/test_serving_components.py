"""Unit tests for the serving building blocks.

Trace generation, admission control, the result cache, the micro-batcher,
replica placement and the autoscaler — each exercised in isolation before
the engine tests compose them.
"""

import numpy as np
import pytest

from repro.core.scheduler import place_standalone, rank_placements
from repro.distributed.perfmodel import InferencePerfModel
from repro.serving import (
    AdmissionController,
    AdmissionPolicy,
    ArrivalPattern,
    Autoscaler,
    AutoscalerConfig,
    BatchPolicy,
    MicroBatcher,
    ReplicaPool,
    Request,
    ResultCache,
    TokenBucket,
    TraceConfig,
    generate_trace,
)


def _req(req_id, arrival=0.0, key=0, model="default", budget=0.5):
    return Request(req_id=req_id, arrival_s=arrival,
                   deadline_s=arrival + budget, key=key, model=model)


# -- traces -------------------------------------------------------------------
class TestTraces:
    @pytest.mark.parametrize("pattern", list(ArrivalPattern))
    def test_same_seed_same_trace(self, pattern):
        cfg = TraceConfig(pattern=pattern, rate_per_s=40, duration_s=30,
                          seed=9)
        assert generate_trace(cfg) == generate_trace(cfg)

    def test_different_seed_different_trace(self):
        a = generate_trace(TraceConfig(seed=1))
        b = generate_trace(TraceConfig(seed=2))
        assert a != b

    @pytest.mark.parametrize("pattern", list(ArrivalPattern))
    def test_arrivals_sorted_within_horizon(self, pattern):
        cfg = TraceConfig(pattern=pattern, rate_per_s=60, duration_s=20,
                          seed=4)
        trace = generate_trace(cfg)
        times = [r.arrival_s for r in trace]
        assert times == sorted(times)
        assert all(0 < t < cfg.duration_s for t in times)
        assert all(r.deadline_s == pytest.approx(
            r.arrival_s + cfg.slo_deadline_s) for r in trace)

    @pytest.mark.parametrize("pattern", list(ArrivalPattern))
    def test_mean_rate_near_nominal(self, pattern):
        cfg = TraceConfig(pattern=pattern, rate_per_s=100, duration_s=300,
                          seed=0)
        trace = generate_trace(cfg)
        assert len(trace) / cfg.duration_s == pytest.approx(
            cfg.rate_per_s, rel=0.15)

    def test_bursty_is_burstier_than_poisson(self):
        """Same mean load, heavier short-window peaks."""
        def peak_window_count(pattern):
            cfg = TraceConfig(pattern=pattern, rate_per_s=50,
                              duration_s=120, seed=3)
            times = np.array([r.arrival_s for r in generate_trace(cfg)])
            counts, _ = np.histogram(times, bins=int(cfg.duration_s))
            return counts.max()

        assert peak_window_count(ArrivalPattern.BURSTY) > \
            peak_window_count(ArrivalPattern.POISSON) * 1.5

    def test_keys_follow_popularity_skew(self):
        trace = generate_trace(TraceConfig(rate_per_s=200, duration_s=60,
                                           key_universe=64, seed=5))
        keys = [r.key for r in trace]
        top = max(set(keys), key=keys.count)
        assert keys.count(top) > len(keys) / 64 * 3   # far above uniform

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceConfig(rate_per_s=0)
        with pytest.raises(ValueError):
            TraceConfig(slo_deadline_s=0)
        with pytest.raises(ValueError):
            TraceConfig(diurnal_swing=1.0)
        with pytest.raises(ValueError):
            TraceConfig(burst_factor=0.5)


# -- admission ----------------------------------------------------------------
class TestAdmission:
    def test_token_bucket_enforces_rate(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5.0)
        admitted = sum(bucket.try_take(0.0) for _ in range(20))
        assert admitted == 5                       # the burst only
        assert bucket.try_take(0.1)                # one token refilled
        assert not bucket.try_take(0.1)

    def test_token_bucket_disabled(self):
        bucket = TokenBucket(rate_per_s=0.0, burst=1.0)
        assert all(bucket.try_take(0.0) for _ in range(100))

    def test_token_bucket_rejects_time_travel(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5.0)
        bucket.try_take(1.0)
        with pytest.raises(ValueError):
            bucket.try_take(0.5)

    def test_shed_on_queue_depth(self):
        ctrl = AdmissionController(AdmissionPolicy(max_queue_depth=4))
        assert ctrl.decide(0.0, queue_depth=3).admitted
        decision = ctrl.decide(0.0, queue_depth=4)
        assert not decision.admitted and decision.reason == "shed"
        assert ctrl.n_shed == 1

    def test_rate_limit_reason(self):
        ctrl = AdmissionController(AdmissionPolicy(rate_limit_per_s=1.0,
                                                   burst=1.0))
        assert ctrl.decide(0.0, 0).admitted
        decision = ctrl.decide(0.0, 0)
        assert not decision.admitted and decision.reason == "rate-limited"
        assert ctrl.n_rate_limited == 1

    def test_defaults_admit_everything(self):
        ctrl = AdmissionController(AdmissionPolicy())
        assert all(ctrl.decide(0.0, depth).admitted
                   for depth in (0, 10, 10_000))


# -- result cache -------------------------------------------------------------
class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.lookup(7, req_id=0) == "miss"
        assert cache.complete(7, now=1.0) == []
        assert cache.lookup(7, req_id=1) == "hit"
        assert cache.hits == 1 and cache.misses == 1

    def test_coalesce_joins_inflight_key(self):
        cache = ResultCache(capacity=4)
        assert cache.lookup(7, req_id=0) == "miss"
        assert cache.lookup(7, req_id=1) == "coalesce"
        assert cache.lookup(7, req_id=2) == "coalesce"
        assert cache.complete(7, now=1.0) == [1, 2]
        assert cache.coalesced == 2

    def test_abandon_releases_waiters_without_caching(self):
        cache = ResultCache(capacity=4)
        cache.lookup(7, req_id=0)
        cache.lookup(7, req_id=1)
        assert cache.abandon(7) == [1]
        assert cache.lookup(7, req_id=2) == "miss"   # nothing was cached

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        for key in (1, 2):
            cache.lookup(key, req_id=key)
            cache.complete(key, now=0.0)
        cache.lookup(1, req_id=10)                    # refresh key 1
        cache.lookup(3, req_id=11)
        cache.complete(3, now=0.0)                    # evicts key 2
        assert cache.lookup(2, req_id=12) == "miss"
        assert cache.lookup(1, req_id=13) == "hit"
        assert cache.evictions == 1

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(capacity=0)
        assert cache.lookup(7, req_id=0) == "miss"
        cache.complete(7, now=0.0)
        assert cache.lookup(7, req_id=1) == "miss"
        assert cache.hit_rate == 0.0


# -- micro-batcher ------------------------------------------------------------
class TestMicroBatcher:
    def test_full_batch_dispatches_immediately(self):
        b = MicroBatcher(BatchPolicy(max_batch_requests=3, max_wait_s=1.0))
        for i in range(2):
            b.enqueue(_req(i), now=0.0)
        assert b.ready_model(0.0) is None             # not full, not old
        b.enqueue(_req(2), now=0.0)
        assert b.ready_model(0.0) == "default"
        assert [r.req_id for r in b.take("default")] == [0, 1, 2]

    def test_timeout_dispatches_partial_batch(self):
        b = MicroBatcher(BatchPolicy(max_batch_requests=8, max_wait_s=0.01))
        b.enqueue(_req(0), now=0.0)
        assert b.ready_model(0.005) is None
        assert b.next_deadline() == pytest.approx(0.01)
        assert b.ready_model(0.01) == "default"

    def test_models_never_mix(self):
        b = MicroBatcher(BatchPolicy(max_batch_requests=4, max_wait_s=0.0))
        b.enqueue(_req(0, model="a"), now=0.0)
        b.enqueue(_req(1, model="b"), now=0.0)
        batch = b.take(b.ready_model(0.0))
        assert len({r.model for r in batch}) == 1

    def test_deepest_queue_wins(self):
        b = MicroBatcher(BatchPolicy(max_batch_requests=8, max_wait_s=0.0))
        b.enqueue(_req(0, model="a"), now=0.0)
        for i in range(1, 4):
            b.enqueue(_req(i, model="b"), now=0.0)
        assert b.ready_model(0.0) == "b"

    def test_requeue_front_preserves_order_and_ships_first(self):
        b = MicroBatcher(BatchPolicy(max_batch_requests=2, max_wait_s=10.0))
        b.enqueue(_req(5, arrival=1.0), now=1.0)
        b.requeue_front([_req(1, arrival=0.1), _req(2, arrival=0.2)])
        # Drained work keeps its original arrival, so it is instantly ready.
        assert b.ready_model(1.0) == "default"
        assert [r.req_id for r in b.take("default")] == [1, 2]
        assert b.depth == 1

    def test_take_empty_raises(self):
        b = MicroBatcher(BatchPolicy())
        with pytest.raises(ValueError):
            b.take("default")


# -- placement ----------------------------------------------------------------
class TestPlacement:
    def test_ranking_prefers_the_booster(self, small_system):
        phase = InferencePerfModel().as_phase(64)
        ranked = rank_placements(small_system, phase)
        assert ranked[0][1] == "esb"         # V100s + scale-out headroom
        assert ranked[1][1] == "dam"         # same GPU, tiny module
        assert ranked[-1][1] == "cm"         # CPU fallback

    def test_overflow_cascades_to_slower_modules(self, small_system):
        phase = InferencePerfModel().as_phase(64)
        seen = []
        for _ in range(small_system.total_nodes):
            placed = place_standalone(small_system, phase)
            if placed is None:
                break
            seen.append(placed[0])
        assert seen[:8] == ["esb"] * 8       # booster fills first
        assert set(seen[8:10]) == {"dam"}
        assert set(seen[10:]) == {"cm"}

    def test_suspect_nodes_avoided(self, small_system):
        phase = InferencePerfModel().as_phase(64)
        suspect = {"esb": {0, 1, 2}}
        placed = place_standalone(small_system, phase, suspect=suspect)
        assert placed is not None
        key, nodes = placed
        assert key == "esb" and not (set(nodes) & suspect["esb"])

    def test_pool_crash_releases_surviving_nodes(self, small_system):
        pool = ReplicaPool(small_system, InferencePerfModel(),
                           nodes_per_replica=2)
        replica = pool.place(now=0.0)
        esb = small_system.module("esb")
        free_before = esb.free_nodes
        esb.mark_down(replica.nodes[0])
        drained = pool.crash(replica, replica.nodes[0], now=1.0)
        assert drained == []                  # replica was idle
        # One node is down, the other returned to the pool.
        assert esb.free_nodes == free_before + 1
        assert replica.nodes[0] in pool.suspect["esb"]


# -- autoscaler ---------------------------------------------------------------
class TestAutoscaler:
    CFG = AutoscalerConfig(min_replicas=1, max_replicas=4, max_step_up=2)

    def test_tops_up_below_minimum(self):
        delta, reason = Autoscaler(self.CFG).decide(0.0, 0, 0, [], 0.5)
        assert (delta, reason) == (1, "below-min")

    def test_scales_up_on_deep_queue(self):
        delta, reason = Autoscaler(self.CFG).decide(0.0, 1, 20, [], 0.5)
        assert delta == 2 and reason == "queue-depth"

    def test_scales_up_on_tail_latency(self):
        window = [0.49] * 50
        delta, reason = Autoscaler(self.CFG).decide(0.0, 1, 0, window, 0.5)
        assert delta > 0 and reason == "p99"

    def test_respects_max_replicas(self):
        delta, _ = Autoscaler(self.CFG).decide(0.0, 4, 100, [], 0.5)
        assert delta == 0

    def test_scales_down_when_idle_and_fast(self):
        window = [0.01] * 50
        delta, reason = Autoscaler(self.CFG).decide(0.0, 3, 0, window, 0.5)
        assert (delta, reason) == (-1, "idle")

    def test_holds_at_minimum(self):
        window = [0.01] * 50
        delta, _ = Autoscaler(self.CFG).decide(0.0, 1, 0, window, 0.5)
        assert delta == 0

    def test_no_scale_down_without_evidence(self):
        delta, _ = Autoscaler(self.CFG).decide(0.0, 3, 0, [], 0.5)
        assert delta == 0
