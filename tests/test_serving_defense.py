"""Serving-plane defenses: breakers, hedging policy, brownout ladder,
and the defended engine end to end.
"""

import pytest

from repro.resilience.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.serving import (
    AutoscalerConfig,
    ServingConfig,
    TraceConfig,
    simulate_serving,
)
from repro.serving.defense import (
    BreakerPolicy,
    BreakerState,
    BrownoutController,
    BrownoutLevel,
    BrownoutPolicy,
    CircuitBreaker,
    DefenseConfig,
    HedgePolicy,
)


class TestBreakerPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"open_s": 0.0},
        {"probe_probability": 0.0},
        {"probe_probability": 1.5},
        {"success_to_close": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        br = CircuitBreaker(BreakerPolicy(failure_threshold=3), "esb:0")
        br.record_failure(0.0)
        br.record_failure(0.1)
        assert br.state(0.1) is BreakerState.CLOSED
        br.record_failure(0.2)
        assert br.state(0.2) is BreakerState.OPEN
        assert not br.allows_dispatch(0.2)

    def test_success_resets_failure_streak(self):
        br = CircuitBreaker(BreakerPolicy(failure_threshold=3), "esb:0")
        br.record_failure(0.0)
        br.record_failure(0.1)
        br.record_success(0.2)
        br.record_failure(0.3)
        br.record_failure(0.4)
        assert br.state(0.4) is BreakerState.CLOSED

    def test_lazy_half_open_after_cooldown(self):
        policy = BreakerPolicy(failure_threshold=1, open_s=0.5)
        br = CircuitBreaker(policy, "esb:0")
        br.record_failure(1.0)
        assert br.state(1.4) is BreakerState.OPEN
        # No timer event: the decay happens inside state().
        assert br.state(1.5) is BreakerState.HALF_OPEN

    def test_half_open_probe_admission_is_seeded(self):
        policy = BreakerPolicy(failure_threshold=1, open_s=0.1,
                               probe_probability=0.5)

        def draws(seed):
            br = CircuitBreaker(policy, "esb:0", seed=seed)
            br.record_failure(0.0)
            return [br.allows_dispatch(1.0) for _ in range(32)]

        assert draws(7) == draws(7)          # deterministic per seed
        assert any(draws(7)) and not all(draws(7))
        assert draws(7) != draws(8)          # seed actually matters

    def test_closes_after_successes_in_half_open(self):
        policy = BreakerPolicy(failure_threshold=1, open_s=0.1,
                               success_to_close=2)
        br = CircuitBreaker(policy, "esb:0")
        br.record_failure(0.0)
        br.record_success(0.2)
        assert br.state(0.2) is BreakerState.HALF_OPEN
        br.record_success(0.3)
        assert br.state(0.3) is BreakerState.CLOSED
        assert [(f, t) for _, f, t in br.transitions] == [
            ("closed", "open"), ("open", "half-open"),
            ("half-open", "closed")]

    def test_half_open_failure_reopens(self):
        policy = BreakerPolicy(failure_threshold=3, open_s=0.1)
        br = CircuitBreaker(policy, "esb:0")
        for _ in range(3):
            br.record_failure(0.0)
        assert br.state(0.2) is BreakerState.HALF_OPEN
        # A single miss in half-open trips immediately — no new streak of
        # failure_threshold required.
        br.record_failure(0.2)
        assert br.state(0.2) is BreakerState.OPEN


class TestHedgePolicy:
    def test_no_deadline_below_min_samples(self):
        policy = HedgePolicy(min_samples=8)
        assert policy.deadline([0.01] * 7) is None

    def test_deadline_is_median_times_multiplier(self):
        policy = HedgePolicy(percentile=50.0, multiplier=3.0, min_samples=8)
        window = [0.010] * 9 + [1.0]     # one gray outlier
        # The median ignores the outlier entirely.
        assert policy.deadline(window) == pytest.approx(0.030, rel=1e-6)

    def test_min_deadline_floor(self):
        policy = HedgePolicy(min_deadline_s=2e-3, min_samples=1)
        assert policy.deadline([1e-5] * 4) == 2e-3

    @pytest.mark.parametrize("kwargs", [
        {"percentile": 0.0},
        {"percentile": 101.0},
        {"multiplier": 0.5},
        {"min_deadline_s": 0.0},
        {"min_samples": 0},
        {"min_samples": 16, "window": 8},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HedgePolicy(**kwargs)


class TestBrownoutController:
    def _hot_kwargs(self):
        return dict(queue_depth=100, n_up=1, budget_overdraft=False)

    def _calm_kwargs(self):
        return dict(queue_depth=0, n_up=1, budget_overdraft=False)

    def test_escalates_one_rung_after_hot_ticks(self):
        ctl = BrownoutController(BrownoutPolicy(escalate_ticks=3))
        assert ctl.tick(0.0, **self._hot_kwargs()) is None
        assert ctl.tick(1.0, **self._hot_kwargs()) is None
        moved = ctl.tick(2.0, **self._hot_kwargs())
        assert moved == (BrownoutLevel.NORMAL, BrownoutLevel.STRETCH_BATCH)
        # One rung per escalation window, never a jump.
        assert ctl.level is BrownoutLevel.STRETCH_BATCH

    def test_ladder_caps_at_cache_only(self):
        ctl = BrownoutController(BrownoutPolicy(escalate_ticks=1))
        for t in range(10):
            ctl.tick(float(t), **self._hot_kwargs())
        assert ctl.level is BrownoutLevel.CACHE_ONLY

    def test_recovery_retraces_one_rung_at_a_time(self):
        ctl = BrownoutController(
            BrownoutPolicy(escalate_ticks=1, recover_ticks=2))
        ctl.tick(0.0, **self._hot_kwargs())
        ctl.tick(1.0, **self._hot_kwargs())
        assert ctl.level is BrownoutLevel.SHED_BRONZE
        assert ctl.tick(2.0, **self._calm_kwargs()) is None
        moved = ctl.tick(3.0, **self._calm_kwargs())
        assert moved == (BrownoutLevel.SHED_BRONZE,
                         BrownoutLevel.STRETCH_BATCH)
        ctl.tick(4.0, **self._calm_kwargs())
        ctl.tick(5.0, **self._calm_kwargs())
        assert ctl.level is BrownoutLevel.NORMAL
        assert [(f, t) for _, f, t in ctl.transitions] == [
            (0, 1), (1, 2), (2, 1), (1, 0)]

    def test_hot_and_calm_counters_reset_each_other(self):
        ctl = BrownoutController(BrownoutPolicy(escalate_ticks=3))
        ctl.tick(0.0, **self._hot_kwargs())
        ctl.tick(1.0, **self._hot_kwargs())
        ctl.tick(2.0, **self._calm_kwargs())     # streak broken
        ctl.tick(3.0, **self._hot_kwargs())
        ctl.tick(4.0, **self._hot_kwargs())
        assert ctl.level is BrownoutLevel.NORMAL

    def test_tripped_breaker_fraction_counts_as_hot(self):
        ctl = BrownoutController(
            BrownoutPolicy(escalate_ticks=1, breaker_open_fraction=0.5))
        moved = ctl.tick(0.0, queue_depth=0, n_up=3, budget_overdraft=False,
                         breakers_open=2, breakers_total=3)
        assert moved == (BrownoutLevel.NORMAL, BrownoutLevel.STRETCH_BATCH)

    def test_budget_overdraft_counts_as_hot(self):
        ctl = BrownoutController(BrownoutPolicy(escalate_ticks=1))
        moved = ctl.tick(0.0, queue_depth=0, n_up=3, budget_overdraft=True)
        assert moved is not None

    def test_wait_stretch_tracks_level(self):
        ctl = BrownoutController(BrownoutPolicy(stretch_factor=4.0))
        assert ctl.wait_stretch == 1.0
        ctl.level = BrownoutLevel.STRETCH_BATCH
        assert ctl.wait_stretch == 4.0
        ctl.level = BrownoutLevel.CACHE_ONLY
        assert ctl.wait_stretch == 4.0


class TestDefenseConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"heartbeat_interval_s": 0.0},
        {"retry_budget_ratio": -0.1},
        {"retry_budget_burst": 0.5},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DefenseConfig(**kwargs)


# -- the defended engine end to end -------------------------------------------
def _gray_scenario(defend: bool, hedging: bool = True, seed: int = 11):
    """One gray-failed replica out of three, pinned capacity."""
    duration = 6.0
    plan = FaultPlan(seed=seed, specs=(
        FaultSpec(kind=FaultKind.GRAY_FAILURE, time=1.5, module="esb",
                  node=0, duration=3.0, magnitude=8.0, probability=0.6),
    ))
    config = ServingConfig(
        trace=TraceConfig(rate_per_s=120.0, duration_s=duration, seed=seed),
        initial_replicas=3,
        autoscaler=AutoscalerConfig(enabled=False),
        defense=DefenseConfig(enabled=defend, hedging_enabled=hedging),
    )
    return simulate_serving(config, fault_injector=FaultInjector(plan))


class TestDefendedEngine:
    def test_hedging_cuts_gray_tail(self):
        undefended = _gray_scenario(defend=False)
        defended = _gray_scenario(defend=True)
        assert defended.metrics.p99 < undefended.metrics.p99
        assert defended.metrics.hedges_issued > 0
        assert defended.metrics.hedges_backup_won > 0

    def test_conservation_holds_under_chaos(self):
        for defend in (False, True):
            report = _gray_scenario(defend=defend)
            m = report.metrics
            assert m.offered == m.admitted + m.rate_limited + m.shed
            assert m.admitted == m.completed

    def test_defense_disabled_leaves_counters_dark(self):
        report = _gray_scenario(defend=False)
        assert report.suspicion_events == 0
        assert report.breaker_transitions == 0
        assert report.metrics.hedges_issued == 0
        assert report.brownout_path == ()
        assert report.duplicate_work_ratio == 0.0

    def test_hedging_can_be_disabled_independently(self):
        report = _gray_scenario(defend=True, hedging=False)
        assert report.metrics.hedges_issued == 0
        # The rest of the defense plane still runs.
        assert report.breaker_transitions > 0

    def test_duplicate_work_stays_bounded(self):
        report = _gray_scenario(defend=True)
        assert 0.0 <= report.duplicate_work_ratio < 0.15

    def test_report_text_is_deterministic(self):
        a = _gray_scenario(defend=True).to_text()
        b = _gray_scenario(defend=True).to_text()
        assert a == b
        assert "hedging" in a and "brownout" in a

    def test_defense_off_is_byte_identical_to_legacy(self):
        """DefenseConfig(enabled=False) must not perturb existing runs."""
        config = ServingConfig(
            trace=TraceConfig(rate_per_s=80.0, duration_s=4.0, seed=3),
            initial_replicas=2,
            autoscaler=AutoscalerConfig(enabled=False),
        )
        defended_off = ServingConfig(
            trace=TraceConfig(rate_per_s=80.0, duration_s=4.0, seed=3),
            initial_replicas=2,
            autoscaler=AutoscalerConfig(enabled=False),
            defense=DefenseConfig(enabled=False),
        )
        assert (simulate_serving(config).to_text()
                == simulate_serving(defended_off).to_text())
