"""End-to-end serving engine tests: determinism, SLOs, failover.

The acceptance criteria of the subsystem live here:

* same seed → **byte-identical** serving report,
* accounting conservation — nothing admitted is ever lost,
* a replica crash mid-run drains its in-flight requests to survivors
  (zero loss, honestly counted deadline misses),
* the autoscaler meets an SLO a pinned single replica misses,
* the cache and coalescer change latency, never correctness.
"""

import pytest

from repro.resilience.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.serving import (
    AdmissionPolicy,
    ArrivalPattern,
    AutoscalerConfig,
    ServingConfig,
    ServingEngine,
    TraceConfig,
    simulate_serving,
)

HEAVY = 32           # samples/request that puts 1 ESB replica near ~95 req/s


def _config(rate=120.0, duration=20.0, seed=0, samples=HEAVY, replicas=1,
            autoscale=True, max_replicas=8, cache=0, pattern="poisson",
            admission=None):
    return ServingConfig(
        trace=TraceConfig(pattern=ArrivalPattern(pattern), rate_per_s=rate,
                          duration_s=duration, samples_per_request=samples,
                          seed=seed, key_universe=1 << 20),
        admission=admission if admission is not None else AdmissionPolicy(),
        autoscaler=AutoscalerConfig(enabled=autoscale, min_replicas=replicas,
                                    max_replicas=max_replicas),
        initial_replicas=replicas,
        cache_capacity=cache,
    )


def _crash_plan(*times, module="esb", repair=5.0):
    return FaultPlan(seed=0, specs=tuple(
        FaultSpec(kind=FaultKind.NODE_CRASH, time=t, module=module,
                  node=i, duration=repair)
        for i, t in enumerate(times)))


class TestDeterminism:
    @pytest.mark.parametrize("pattern", ["poisson", "diurnal", "bursty"])
    def test_same_seed_byte_identical_report(self, make_small_system,
                                             pattern):
        cfg = _config(pattern=pattern, seed=7, cache=256)
        a = simulate_serving(cfg, system=make_small_system())
        b = simulate_serving(cfg, system=make_small_system())
        assert a.to_text() == b.to_text()
        assert a.batch_log == b.batch_log
        assert a.scale_events == b.scale_events

    def test_same_seed_identical_under_faults(self, make_small_system):
        cfg = _config(seed=3, replicas=2)
        runs = []
        for _ in range(2):
            runs.append(simulate_serving(
                cfg, system=make_small_system(),
                fault_injector=FaultInjector(_crash_plan(4.0, 9.0))))
        assert runs[0].to_text() == runs[1].to_text()
        assert runs[0].failover_events == runs[1].failover_events

    def test_different_seed_different_outcome(self, make_small_system):
        a = simulate_serving(_config(seed=1), system=make_small_system())
        b = simulate_serving(_config(seed=2), system=make_small_system())
        assert a.to_text() != b.to_text()

    def test_engine_runs_exactly_once(self, small_system):
        engine = ServingEngine(_config(duration=5.0), system=small_system)
        engine.run()
        with pytest.raises(RuntimeError):
            engine.run()


class TestAccounting:
    def test_conservation_no_faults(self, small_system):
        rep = simulate_serving(_config(seed=5), system=small_system)
        m = rep.metrics
        assert m.offered > 0
        assert m.offered == m.admitted + m.rate_limited + m.shed
        assert m.completed == m.admitted
        assert m.on_time == m.completed - m.deadline_misses

    def test_rejections_are_counted_not_lost(self, small_system):
        cfg = _config(rate=200.0, duration=15.0,
                      admission=AdmissionPolicy(rate_limit_per_s=80.0,
                                                burst=20.0,
                                                max_queue_depth=64))
        rep = simulate_serving(cfg, system=small_system)
        m = rep.metrics
        assert m.rate_limited > 0
        assert m.offered == m.admitted + m.rate_limited + m.shed
        assert m.completed == m.admitted

    def test_goodput_excludes_late_completions(self, small_system):
        # One pinned replica at 2x its capacity: everything completes,
        # but most of it far past the deadline.
        rep = simulate_serving(_config(rate=200.0, duration=15.0,
                                       autoscale=False),
                               system=small_system)
        m = rep.metrics
        assert m.completed == m.admitted
        assert m.deadline_misses > 0
        assert m.on_time < m.completed
        assert rep.goodput_per_s < m.completed / rep.config.trace.duration_s


class TestAutoscaling:
    def test_autoscaled_meets_slo_fixed_misses(self, make_small_system):
        fixed = simulate_serving(_config(rate=150.0, duration=30.0,
                                         autoscale=False),
                                 system=make_small_system())
        auto = simulate_serving(_config(rate=150.0, duration=30.0),
                                system=make_small_system())
        assert not fixed.meets_slo()
        assert auto.meets_slo()
        assert auto.peak_replicas > 1
        assert auto.goodput_per_s > fixed.goodput_per_s

    def test_scale_up_and_back_down(self, small_system):
        # A burst forces scale-up; the quiet tail lets the pool shrink.
        rep = simulate_serving(
            _config(rate=100.0, duration=60.0, pattern="bursty", seed=4),
            system=small_system)
        deltas = {ev.delta for ev in rep.scale_events}
        assert any(d > 0 for d in deltas)
        assert any(d < 0 for d in deltas)
        assert rep.final_replicas < rep.peak_replicas

    def test_replicas_prefer_the_booster(self, small_system):
        rep = simulate_serving(_config(rate=240.0, duration=20.0),
                               system=small_system)
        assert set(rep.module_replica_seconds) == {"esb"}


class TestFailover:
    def test_crash_drains_inflight_to_survivors(self, make_small_system):
        """The drill: kill a busy replica's node; zero admitted loss."""
        cfg = _config(rate=150.0, duration=25.0, replicas=2, seed=11)
        rep = simulate_serving(cfg, system=make_small_system(),
                               fault_injector=FaultInjector(
                                   _crash_plan(5.0)))
        m = rep.metrics
        assert m.failovers == 1
        assert m.requests_failed_over > 0          # the replica was busy
        assert m.completed == m.admitted           # nothing lost
        assert rep.failover_events[0].requests_drained == \
            m.requests_failed_over
        assert rep.failover_events[0].backoff_s > 0

    def test_double_crash_still_zero_loss(self, make_small_system):
        cfg = _config(rate=150.0, duration=30.0, replicas=2, seed=11)
        rep = simulate_serving(cfg, system=make_small_system(),
                               fault_injector=FaultInjector(
                                   _crash_plan(5.0, 6.0)))
        assert rep.metrics.failovers == 2
        assert rep.metrics.completed == rep.metrics.admitted

    def test_crash_on_unused_node_is_benign(self, make_small_system):
        plan = FaultPlan(seed=0, specs=(FaultSpec(
            kind=FaultKind.NODE_CRASH, time=5.0, module="esb", node=7,
            duration=5.0),))
        cfg = _config(rate=60.0, duration=15.0, seed=2, autoscale=False)
        rep = simulate_serving(cfg, system=make_small_system(),
                               fault_injector=FaultInjector(plan))
        assert rep.metrics.failovers == 0
        assert rep.metrics.completed == rep.metrics.admitted

    def test_failover_latency_is_visible_in_the_tail(self, make_small_system):
        """Honest reporting: the drill may cost latency, never requests."""
        cfg = _config(rate=150.0, duration=25.0, replicas=2, seed=11)
        clean = simulate_serving(cfg, system=make_small_system())
        faulty = simulate_serving(cfg, system=make_small_system(),
                                  fault_injector=FaultInjector(
                                      _crash_plan(5.0)))
        assert faulty.metrics.completed == clean.metrics.completed
        assert faulty.p99 >= clean.p99


class TestCache:
    def test_cache_cuts_replica_work(self, make_small_system):
        cold = simulate_serving(
            _config(rate=120.0, duration=20.0, seed=6, cache=0),
            system=make_small_system())
        warm_cfg = ServingConfig(
            trace=TraceConfig(rate_per_s=120.0, duration_s=20.0,
                              samples_per_request=HEAVY, seed=6,
                              key_universe=64),
            autoscaler=AutoscalerConfig(enabled=True, min_replicas=1,
                                        max_replicas=8),
            initial_replicas=1, cache_capacity=256)
        warm = simulate_serving(warm_cfg, system=make_small_system())
        assert warm.cache_hit_rate > 0.5
        assert warm.metrics.batched_requests < cold.metrics.batched_requests
        assert warm.metrics.completed == warm.metrics.admitted

    def test_coalescing_single_flight(self, make_small_system):
        """A hot cold-key burst computes once; duplicates attach to it."""
        cfg = ServingConfig(
            trace=TraceConfig(rate_per_s=200.0, duration_s=10.0,
                              samples_per_request=HEAVY, seed=8,
                              key_universe=4),
            autoscaler=AutoscalerConfig(enabled=False, min_replicas=1),
            initial_replicas=1, cache_capacity=16)
        rep = simulate_serving(cfg, system=make_small_system())
        assert rep.cache_coalesced > 0
        assert rep.metrics.completed == rep.metrics.admitted
        # Replicas only ever saw the distinct keys' first requests.
        assert rep.metrics.batched_requests == rep.cache_misses

    def test_cache_determinism(self, make_small_system):
        cfg = ServingConfig(
            trace=TraceConfig(rate_per_s=150.0, duration_s=15.0,
                              samples_per_request=HEAVY, seed=9,
                              key_universe=32),
            autoscaler=AutoscalerConfig(enabled=True, min_replicas=1,
                                        max_replicas=4),
            initial_replicas=1, cache_capacity=8)
        a = simulate_serving(cfg, system=make_small_system())
        b = simulate_serving(cfg, system=make_small_system())
        assert a.to_text() == b.to_text()
        assert (a.cache_hits, a.cache_misses, a.cache_coalesced) == \
            (b.cache_hits, b.cache_misses, b.cache_coalesced)
