"""Dynamic batching is a latency decision, never a correctness decision.

Three layers of the same guarantee, asserted bit-for-bit:

* an explicit micro-batch plan through :func:`predict_in_batches` equals
  the serial ``predict_fn(X)``,
* the batch plan an actual serving run formed (its ``batch_log``) replays
  to the identical predictions,
* sharded :func:`distributed_predict` through the in-process MPI runtime
  equals both.
"""

import numpy as np
import pytest

from repro.distributed.inference import (
    distributed_predict,
    predict_in_batches,
)
from repro.mpi import run_spmd
from repro.serving import (
    ArrivalPattern,
    AutoscalerConfig,
    ServingConfig,
    TraceConfig,
    simulate_serving,
)


def _linear_predict(X):
    """A deterministic classifier with per-row structure (argmax of X·W)."""
    rng = np.random.default_rng(42)
    W = rng.normal(size=(X.shape[1], 7))
    return np.argmax(X @ W, axis=1)


@pytest.fixture
def features(seeded_rng):
    return seeded_rng.normal(size=(96, 12))


class TestPredictInBatches:
    def test_equals_serial_bit_for_bit(self, features, seeded_rng):
        idx = list(range(len(features)))
        seeded_rng.shuffle(idx)
        plan, pos = [], 0
        while pos < len(idx):
            size = int(seeded_rng.integers(1, 9))
            plan.append(idx[pos:pos + size])
            pos += size
        batched = predict_in_batches(_linear_predict, features, plan)
        serial = _linear_predict(features)
        assert batched.dtype == serial.dtype
        assert np.array_equal(batched, serial)

    def test_single_batch_plan(self, features):
        plan = [list(range(len(features)))]
        assert np.array_equal(predict_in_batches(_linear_predict, features,
                                                 plan),
                              _linear_predict(features))

    def test_rejects_incomplete_plan(self, features):
        with pytest.raises(ValueError):
            predict_in_batches(_linear_predict, features, [[0, 1]])

    def test_rejects_duplicate_index(self, features):
        plan = [list(range(len(features))), [0]]
        with pytest.raises(ValueError):
            predict_in_batches(_linear_predict, features, plan)

    def test_rejects_out_of_range(self, features):
        with pytest.raises(ValueError):
            predict_in_batches(_linear_predict, features, [[0, 10_000]])

    def test_rejects_empty_batch(self, features):
        plan = [list(range(len(features))), []]
        with pytest.raises(ValueError):
            predict_in_batches(_linear_predict, features, plan)


class TestServingPathEqualsSerial:
    def test_engine_batch_plan_replays_bit_for_bit(self, make_small_system,
                                                   seeded_rng):
        """The plan a real serving run formed reproduces serial output."""
        cfg = ServingConfig(
            trace=TraceConfig(pattern=ArrivalPattern.BURSTY, rate_per_s=80.0,
                              duration_s=10.0, samples_per_request=4,
                              seed=12, key_universe=1 << 20),
            autoscaler=AutoscalerConfig(enabled=True, min_replicas=1,
                                        max_replicas=4),
            initial_replicas=1, cache_capacity=0)
        rep = simulate_serving(cfg, system=make_small_system())
        plan = [list(req_ids) for _, req_ids in rep.batch_log]
        assert sum(len(b) for b in plan) == rep.metrics.completed

        X = seeded_rng.normal(size=(rep.metrics.completed, 12))
        batched = predict_in_batches(_linear_predict, X, plan)
        assert np.array_equal(batched, _linear_predict(X))

    def test_distributed_predict_equals_serving_path(self, features):
        """CM-train/ESB-infer: sharded inference == micro-batched == serial."""
        serial = _linear_predict(features)

        def rank_fn(comm):
            return distributed_predict(comm, _linear_predict, features,
                                       batch_size=16)

        for world in (1, 3, 4):
            results = run_spmd(rank_fn, world)
            for rank_result in results:
                assert np.array_equal(rank_result, serial)

        plan = [list(range(i, min(i + 8, len(features))))
                for i in range(0, len(features), 8)]
        assert np.array_equal(
            predict_in_batches(_linear_predict, features, plan), serial)
