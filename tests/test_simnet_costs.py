"""Tests for the α-β(-γ) collective cost models, including hypothesis
property tests on the algebraic structure the literature guarantees."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.simnet import (
    CommCostModel,
    CollectiveCosts,
    LinkKind,
    allreduce_recursive_doubling_time,
    allreduce_ring_time,
    allreduce_rabenseifner_time,
    allgather_ring_time,
    best_allreduce_time,
    broadcast_binomial_time,
    ptp_time,
    reduce_scatter_time,
)

ALPHA, BETA, GAMMA = 1e-6, 4e-11, 5e-12


def test_ptp_alpha_beta():
    assert ptp_time(ALPHA, BETA, 1000) == pytest.approx(ALPHA + 1000 * BETA)


def test_single_rank_collectives_are_free():
    assert allreduce_ring_time(1, 1e6, ALPHA, BETA) == 0.0
    assert allreduce_recursive_doubling_time(1, 1e6, ALPHA, BETA) == 0.0
    assert allreduce_rabenseifner_time(1, 1e6, ALPHA, BETA) == 0.0
    assert broadcast_binomial_time(1, 1e6, ALPHA, BETA) == 0.0
    assert allgather_ring_time(1, 1e6, ALPHA, BETA) == 0.0
    assert reduce_scatter_time(1, 1e6, ALPHA, BETA) == 0.0


def test_ring_formula():
    p, n = 8, 1e6
    expected = 2 * 7 * ALPHA + 2 * n * BETA * 7 / 8 + n * GAMMA * 7 / 8
    assert allreduce_ring_time(p, n, ALPHA, BETA, GAMMA) == pytest.approx(expected)


def test_recursive_doubling_formula():
    p, n = 8, 1e6
    expected = 3 * (ALPHA + n * BETA + n * GAMMA)
    assert allreduce_recursive_doubling_time(p, n, ALPHA, BETA, GAMMA) == \
        pytest.approx(expected)


def test_ring_bandwidth_term_saturates_with_p():
    """Ring's bandwidth term approaches 2nβ — (p-1)/p saturation."""
    n = 1e8
    t64 = allreduce_ring_time(64, n, 0.0, BETA)
    t1024 = allreduce_ring_time(1024, n, 0.0, BETA)
    assert t1024 < 2 * n * BETA
    assert t1024 / t64 < 1.02


def test_small_messages_favour_recursive_doubling():
    t_ring = allreduce_ring_time(64, 64, ALPHA, BETA, GAMMA)
    t_rd = allreduce_recursive_doubling_time(64, 64, ALPHA, BETA, GAMMA)
    assert t_rd < t_ring


def test_large_messages_favour_ring_or_rabenseifner():
    n = 1e9
    t_ring = allreduce_ring_time(64, n, ALPHA, BETA, GAMMA)
    t_rd = allreduce_recursive_doubling_time(64, n, ALPHA, BETA, GAMMA)
    assert t_ring < t_rd


def test_best_allreduce_picks_minimum():
    for n in (64, 1e4, 1e6, 1e9):
        t, name = best_allreduce_time(32, n, ALPHA, BETA, GAMMA)
        candidates = [
            allreduce_ring_time(32, n, ALPHA, BETA, GAMMA),
            allreduce_recursive_doubling_time(32, n, ALPHA, BETA, GAMMA),
            allreduce_rabenseifner_time(32, n, ALPHA, BETA, GAMMA),
        ]
        assert t == pytest.approx(min(candidates))


def test_invalid_args_rejected():
    with pytest.raises(ValueError):
        allreduce_ring_time(0, 1e6, ALPHA, BETA)
    with pytest.raises(ValueError):
        ptp_time(ALPHA, BETA, -1)


@given(
    p=st.integers(min_value=2, max_value=4096),
    nbytes=st.floats(min_value=1.0, max_value=1e10),
)
@settings(max_examples=200, deadline=None)
def test_property_all_costs_positive_and_finite(p, nbytes):
    for fn in (allreduce_ring_time, allreduce_recursive_doubling_time,
               allreduce_rabenseifner_time):
        t = fn(p, nbytes, ALPHA, BETA, GAMMA)
        assert t > 0 and math.isfinite(t)


@given(
    p=st.integers(min_value=2, max_value=512),
    nbytes=st.floats(min_value=1.0, max_value=1e9),
)
@settings(max_examples=100, deadline=None)
def test_property_rabenseifner_never_beats_both_lower_bounds(p, nbytes):
    """Any allreduce needs >= the bandwidth lower bound 2nβ(p-1)/p."""
    lower = 2 * nbytes * BETA * (p - 1) / p
    for fn in (allreduce_ring_time, allreduce_rabenseifner_time):
        assert fn(p, nbytes, ALPHA, BETA, 0.0) >= lower * 0.999999


@given(nbytes=st.floats(min_value=1.0, max_value=1e9))
@settings(max_examples=50, deadline=None)
def test_property_costs_monotone_in_message_size(nbytes):
    t1 = allreduce_ring_time(16, nbytes, ALPHA, BETA, GAMMA)
    t2 = allreduce_ring_time(16, nbytes * 2, ALPHA, BETA, GAMMA)
    assert t2 > t1


class TestCommCostModel:
    def test_from_link_kind(self):
        model = CommCostModel.of_kind(LinkKind.INFINIBAND_HDR)
        assert model.alpha > 0 and model.beta > 0

    def test_scaled(self):
        model = CommCostModel.of_kind(LinkKind.INFINIBAND_HDR)
        fast = model.scaled(alpha_factor=0.5, beta_factor=0.5)
        assert fast.alpha == model.alpha * 0.5
        assert fast.beta == model.beta * 0.5

    def test_collective_costs_facade(self):
        costs = CollectiveCosts(CommCostModel.of_kind(LinkKind.INFINIBAND_HDR))
        assert costs.allreduce(8, 1e6) > 0
        assert costs.allreduce(8, 1e6, algorithm="ring") > 0
        assert costs.broadcast(8, 1e6) > 0
        assert costs.allgather(8, 1e6) > 0
        assert costs.reduce_scatter(8, 1e6) > 0
        assert costs.ptp(1e6) > 0

    def test_unknown_algorithm_rejected(self):
        costs = CollectiveCosts(CommCostModel.of_kind(LinkKind.EXTOLL))
        with pytest.raises(ValueError):
            costs.allreduce(8, 1e6, algorithm="magic")

    def test_auto_never_worse_than_named(self):
        costs = CollectiveCosts(CommCostModel.of_kind(LinkKind.INFINIBAND_EDR))
        for n in (100, 1e5, 1e8):
            auto = costs.allreduce(32, n)
            assert auto <= costs.allreduce(32, n, algorithm="ring") + 1e-15
            assert auto <= costs.allreduce(
                32, n, algorithm="recursive-doubling") + 1e-15
