"""Tests for the discrete-event simulation engine."""

import pytest

from repro.simnet import Simulator, SimulationError
from repro.simnet.events import Resource


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(5.0)
    assert sim.run() == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    for delay in (3.0, 1.0, 2.0):
        evt = sim.timeout(delay, value=delay)
        evt.add_callback(lambda e: fired.append(e.value))
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(5):
        evt = sim.timeout(1.0, value=i)
        evt.add_callback(lambda e: fired.append(e.value))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_event_value_before_trigger_raises():
    sim = Simulator()
    evt = sim.event("pending")
    with pytest.raises(SimulationError):
        _ = evt.value


def test_event_double_trigger_raises():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    evt.succeed(2)
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_run_until_stops_early():
    sim = Simulator()
    fired = []
    sim.timeout(1.0).add_callback(lambda e: fired.append(1))
    sim.timeout(10.0).add_callback(lambda e: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0


def test_callback_on_already_triggered_event_fires_immediately():
    sim = Simulator()
    evt = sim.timeout(0.0, value="x")
    sim.run()
    seen = []
    evt.add_callback(lambda e: seen.append(e.value))
    assert seen == ["x"]


def test_process_generator_sequences_timeouts():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(("start", sim.now))
        yield sim.timeout(2.0)
        trace.append(("mid", sim.now))
        yield 3.0          # bare float = timeout
        trace.append(("end", sim.now))
        return "done"

    p = sim.process(proc())
    sim.run()
    assert trace == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]
    assert p.done.value == "done"
    assert not p.alive


def test_process_yielding_garbage_raises():
    sim = Simulator()

    def proc():
        yield "not an event"

    sim.process(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_all_of_waits_for_every_event():
    sim = Simulator()
    evts = [sim.timeout(t, value=t) for t in (1.0, 4.0, 2.0)]
    done = sim.all_of(evts)
    sim.run()
    assert done.time == 4.0
    assert done.value == [1.0, 4.0, 2.0]


def test_all_of_empty_triggers_immediately():
    sim = Simulator()
    done = sim.all_of([])
    sim.run()
    assert done.triggered and done.value == []


def test_any_of_takes_first():
    sim = Simulator()
    done = sim.any_of([sim.timeout(5.0, value="slow"),
                       sim.timeout(1.0, value="fast")])
    sim.run()
    assert done.value == "fast"
    assert done.time == 1.0


def test_any_of_empty_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.any_of([])


class TestResource:
    def test_capacity_grants_immediately(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        res.acquire()
        res.acquire()
        sim.run()
        assert res.available == 0

    def test_waiters_queue_fifo(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []

        def worker(name, hold):
            grant = res.acquire()
            yield grant
            order.append((name, sim.now))
            yield sim.timeout(hold)
            res.release()

        sim.process(worker("a", 2.0))
        sim.process(worker("b", 1.0))
        sim.process(worker("c", 1.0))
        sim.run()
        assert [n for n, _ in order] == ["a", "b", "c"]
        assert [t for _, t in order] == [0.0, 2.0, 3.0]

    def test_release_idle_raises(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)


def test_determinism_across_runs():
    def build():
        sim = Simulator()
        log = []
        for i in range(20):
            sim.timeout((i * 7) % 5 + 0.5, value=i).add_callback(
                lambda e: log.append(e.value))
        sim.run()
        return log

    assert build() == build()


def test_runaway_guard():
    sim = Simulator()

    def forever():
        while True:
            yield sim.timeout(1.0)

    sim.process(forever())
    with pytest.raises(SimulationError):
        sim.run(max_events=100)
