"""Partition plumbing on both planes: the shared window arithmetic, the
simnet link wrapper, and the MPI transport's stall-to-heal delivery.

The contract under test is TCP-over-a-partition semantics: traffic that
hits an active cut is *delayed to heal time plus a retransmission
burst*, never silently dropped — the structural half of the chaos
drill's zero-loss invariant.
"""

import pytest

from repro.mpi.transport import Message, PartitionSchedule, Transport
from repro.simnet import Link, LinkKind
from repro.simnet.link import PartitionedLink, PartitionWindow


def _link():
    return Link(kind=LinkKind.INFINIBAND_HDR, latency_s=1e-6,
                bandwidth_Bps=1e9)


class TestPartitionWindow:
    def test_active_is_half_open(self):
        window = PartitionWindow(start_s=2.0, end_s=5.0)
        assert not window.active(1.999)
        assert window.active(2.0)
        assert window.active(4.999)
        assert not window.active(5.0)       # heal instant is healthy

    def test_delay_until_heal(self):
        window = PartitionWindow(start_s=2.0, end_s=5.0)
        assert window.delay_until_heal(1.0) == 0.0
        assert window.delay_until_heal(3.0) == 2.0
        assert window.delay_until_heal(5.0) == 0.0

    def test_rejects_backwards_window(self):
        with pytest.raises(ValueError):
            PartitionWindow(start_s=5.0, end_s=2.0)

    def test_empty_window_is_never_active(self):
        window = PartitionWindow(start_s=3.0, end_s=3.0)
        assert not window.active(3.0)
        assert window.delay_until_heal(3.0) == 0.0


class TestPartitionedLink:
    def test_transparent_outside_the_window(self):
        base = _link()
        cut = PartitionedLink(base, PartitionWindow(2.0, 5.0))
        nbytes = 1 << 20
        assert cut.transfer_time_at(1.0, nbytes) == base.transfer_time(nbytes)
        assert cut.transfer_time_at(6.0, nbytes) == base.transfer_time(nbytes)
        assert cut.stalled == 0

    def test_stalls_to_heal_plus_retransmit_inside(self):
        base = _link()
        cut = PartitionedLink(base, PartitionWindow(2.0, 5.0),
                              retransmit_s=1e-3)
        nbytes = 1 << 20
        cost = cut.transfer_time_at(3.0, nbytes)
        assert cost == pytest.approx(2.0 + 1e-3
                                     + base.transfer_time(nbytes))
        assert cut.stalled == 1

    def test_delivery_is_delayed_never_lost(self):
        """Cost is always finite and >= the healthy cost: the partition
        slows traffic down, it cannot make it disappear."""
        base = _link()
        cut = PartitionedLink(base, PartitionWindow(2.0, 5.0))
        healthy = base.transfer_time(4096)
        for now in (0.0, 2.0, 3.5, 4.999, 5.0, 100.0):
            assert cut.transfer_time_at(now, 4096) >= healthy

    def test_position_independent_path_stays_healthy(self):
        base = _link()
        cut = PartitionedLink(base, PartitionWindow(0.0, 1e9))
        # transfer_time (no position) must not charge the stall.
        assert cut.transfer_time(4096) == base.transfer_time(4096)


class TestPartitionSchedule:
    def test_crosses_is_xor_membership(self):
        schedule = PartitionSchedule(window=PartitionWindow(0.0, 1.0),
                                     far_ranks=frozenset({2, 3}))
        assert schedule.crosses(0, 2)
        assert schedule.crosses(3, 1)
        assert not schedule.crosses(0, 1)   # both near
        assert not schedule.crosses(2, 3)   # both far


class TestTransportPartitions:
    def _msg(self, source, send_time):
        return Message(source=source, tag=0, context=0, payload=b"x",
                       send_time=send_time, nbytes=1)

    def test_far_ranks_validated(self):
        transport = Transport(world_size=4)
        with pytest.raises(ValueError):
            transport.install_partition(PartitionSchedule(
                window=PartitionWindow(0.0, 1.0),
                far_ranks=frozenset({3, 4})))

    def test_crossing_message_stalls_to_heal(self):
        transport = Transport(world_size=2)
        transport.install_partition(PartitionSchedule(
            window=PartitionWindow(1.0, 4.0), far_ranks=frozenset({1}),
            retransmit_s=1e-3))
        transport.put(1, self._msg(source=0, send_time=2.0))
        delivered = transport.get(1, source=0)
        assert delivered.send_time == pytest.approx(4.0 + 1e-3)
        assert transport.partition_stalled == 1

    def test_same_side_message_unaffected(self):
        transport = Transport(world_size=4)
        transport.install_partition(PartitionSchedule(
            window=PartitionWindow(1.0, 4.0), far_ranks=frozenset({2, 3})))
        transport.put(1, self._msg(source=0, send_time=2.0))
        assert transport.get(1, source=0).send_time == 2.0
        assert transport.partition_stalled == 0

    def test_outside_window_unaffected(self):
        transport = Transport(world_size=2)
        transport.install_partition(PartitionSchedule(
            window=PartitionWindow(1.0, 4.0), far_ranks=frozenset({1})))
        transport.put(1, self._msg(source=0, send_time=5.0))
        assert transport.get(1, source=0).send_time == 5.0

    def test_overlapping_windows_iterate_to_fixed_point(self):
        """A message stalled past one cut may land inside the next; it
        must be pushed past every window it encounters."""
        transport = Transport(world_size=2)
        transport.install_partition(PartitionSchedule(
            window=PartitionWindow(1.0, 4.0), far_ranks=frozenset({1}),
            retransmit_s=0.5))
        transport.install_partition(PartitionSchedule(
            window=PartitionWindow(4.0, 6.0), far_ranks=frozenset({1}),
            retransmit_s=0.5))
        transport.put(1, self._msg(source=0, send_time=2.0))
        delivered = transport.get(1, source=0)
        # 2.0 -> 4.5 (first heal + burst, inside window two) -> 6.5.
        assert delivered.send_time == pytest.approx(6.5)
        assert transport.partition_stalled == 2

    def test_no_message_is_ever_dropped(self):
        transport = Transport(world_size=2)
        transport.install_partition(PartitionSchedule(
            window=PartitionWindow(0.0, 10.0), far_ranks=frozenset({1})))
        for i in range(20):
            transport.put(1, self._msg(source=0, send_time=float(i)))
        received = [transport.get(1, source=0) for _ in range(20)]
        assert len(received) == 20
