"""Tests for interconnect topologies and the MSA federation."""

import pytest

from repro.simnet import (
    Link,
    LinkKind,
    fat_tree,
    torus_3d,
    dragonfly,
    fully_connected,
    federated,
)


class TestLink:
    def test_transfer_time_is_alpha_beta(self):
        link = Link.of_kind(LinkKind.INFINIBAND_HDR)
        t = link.transfer_time(1_000_000)
        assert t == pytest.approx(link.latency_s + 1e6 / link.bandwidth_Bps)

    def test_zero_bytes_costs_latency_only(self):
        link = Link.of_kind(LinkKind.EXTOLL)
        assert link.transfer_time(0) == link.latency_s

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            Link.of_kind(LinkKind.NVLINK).transfer_time(-1)

    def test_effective_bandwidth_below_peak(self):
        link = Link.of_kind(LinkKind.INFINIBAND_EDR)
        assert link.effective_bandwidth(1000) < link.bandwidth_Bps

    def test_hdr_is_faster_than_edr(self):
        edr = Link.of_kind(LinkKind.INFINIBAND_EDR)
        hdr = Link.of_kind(LinkKind.INFINIBAND_HDR)
        assert hdr.transfer_time(10**8) < edr.transfer_time(10**8)

    def test_nvlink_beats_pcie(self):
        nv = Link.of_kind(LinkKind.NVLINK)
        pcie = Link.of_kind(LinkKind.PCIE3)
        assert nv.bandwidth_Bps > pcie.bandwidth_Bps


class TestFatTree:
    def test_node_count(self):
        topo = fat_tree(40, LinkKind.INFINIBAND_EDR, radix=16)
        assert len(topo.terminals) == 40
        # 3 leaves + 1 spine
        assert len(topo.switches) == 4

    def test_same_leaf_two_hops(self):
        topo = fat_tree(32, LinkKind.INFINIBAND_EDR, radix=16)
        assert topo.hop_count(("node", 0), ("node", 1)) == 2

    def test_cross_leaf_four_hops(self):
        topo = fat_tree(32, LinkKind.INFINIBAND_EDR, radix=16)
        assert topo.hop_count(("node", 0), ("node", 20)) == 4

    def test_uplink_not_bottleneck(self):
        # The fat uplink should leave the access link as the bottleneck.
        topo = fat_tree(32, LinkKind.INFINIBAND_EDR, radix=16)
        access_bw = Link.of_kind(LinkKind.INFINIBAND_EDR).bandwidth_Bps
        assert topo.path_bandwidth(("node", 0), ("node", 20)) == access_bw

    def test_transfer_time_self_is_zero(self):
        topo = fat_tree(8, LinkKind.INFINIBAND_EDR)
        assert topo.transfer_time(("node", 3), ("node", 3), 1e9) == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            fat_tree(0, LinkKind.INFINIBAND_EDR)
        with pytest.raises(ValueError):
            fat_tree(4, LinkKind.INFINIBAND_EDR, radix=1)


class TestTorus:
    def test_node_count(self):
        topo = torus_3d((3, 3, 3), LinkKind.EXTOLL)
        assert len(topo.terminals) == 27

    def test_wraparound_is_one_hop(self):
        topo = torus_3d((4, 1, 1), LinkKind.EXTOLL)
        assert topo.hop_count(("node", 0, 0, 0), ("node", 3, 0, 0)) == 1

    def test_max_distance_is_half_ring(self):
        topo = torus_3d((6, 1, 1), LinkKind.EXTOLL)
        assert topo.hop_count(("node", 0, 0, 0), ("node", 3, 0, 0)) == 3

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            torus_3d((0, 2, 2), LinkKind.EXTOLL)


class TestDragonfly:
    def test_structure(self):
        topo = dragonfly(4, 8, LinkKind.INFINIBAND_HDR)
        assert len(topo.terminals) == 32
        assert len(topo.switches) == 4

    def test_inter_group_three_hops(self):
        topo = dragonfly(3, 4, LinkKind.INFINIBAND_HDR)
        assert topo.hop_count(("node", 0, 0), ("node", 2, 1)) == 3


class TestFullyConnected:
    def test_all_pairs_one_hop(self):
        topo = fully_connected(6, LinkKind.NVLINK)
        for i in range(6):
            for j in range(6):
                if i != j:
                    assert topo.hop_count(("node", i), ("node", j)) == 1


class TestFederation:
    def _msa(self):
        return federated({
            "cm": fat_tree(8, LinkKind.INFINIBAND_EDR, name="cm"),
            "esb": fat_tree(16, LinkKind.INFINIBAND_HDR, name="esb"),
        })

    def test_terminals_preserved(self):
        topo = self._msa()
        assert len(topo.terminals) == 24

    def test_intra_module_path_avoids_federation(self):
        topo = self._msa()
        path = topo.path(("cm", ("node", 0)), ("cm", ("node", 1)))
        assert ("federation", 0) not in path

    def test_inter_module_path_crosses_federation(self):
        topo = self._msa()
        path = topo.path(("cm", ("node", 0)), ("esb", ("node", 0)))
        assert ("federation", 0) in path

    def test_inter_module_slower_than_intra(self):
        topo = self._msa()
        intra = topo.transfer_time(("cm", ("node", 0)), ("cm", ("node", 1)), 1e8)
        inter = topo.transfer_time(("cm", ("node", 0)), ("esb", ("node", 0)), 1e8)
        assert inter > intra

    def test_empty_federation_rejected(self):
        with pytest.raises(ValueError):
            federated({})

    def test_bisection_links_positive(self):
        assert self._msa().bisection_links() > 0


class TestCongestion:
    def test_concurrent_flows_share_bottleneck(self):
        topo = fat_tree(16, LinkKind.INFINIBAND_EDR)
        alone = topo.transfer_time(("node", 0), ("node", 9), 1e9)
        shared = topo.transfer_time(("node", 0), ("node", 9), 1e9,
                                    concurrent_flows=4)
        assert shared > alone * 3
        assert shared < alone * 5

    def test_latency_unaffected_by_congestion(self):
        topo = fat_tree(8, LinkKind.INFINIBAND_EDR)
        lat = topo.path_latency(("node", 0), ("node", 7))
        t = topo.transfer_time(("node", 0), ("node", 7), 0.0,
                               concurrent_flows=100)
        assert t == pytest.approx(lat)

    def test_invalid_flow_count(self):
        topo = fat_tree(4, LinkKind.INFINIBAND_EDR)
        with pytest.raises(ValueError):
            topo.transfer_time(("node", 0), ("node", 1), 1.0,
                               concurrent_flows=0)
