"""Storage substrates: striped PFS, NAM sharing (E10), memory tiers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage import (
    DatasetSharingStudy,
    MemoryTier,
    NetworkAttachedMemory,
    ParallelFileSystem,
    StripeLayout,
    TieredStore,
)

GiB = 1024 ** 3


class TestStripeLayout:
    def test_targets_for_small_read_hits_one(self):
        layout = StripeLayout(stripe_count=4, stripe_bytes=1 << 20, first_target=0)
        assert layout.targets_for(0, 100, 16) == [0]

    def test_targets_for_wide_read_hits_all_stripes(self):
        layout = StripeLayout(stripe_count=4, stripe_bytes=1 << 20, first_target=2)
        targets = layout.targets_for(0, 8 << 20, 16)
        assert sorted(targets) == [2, 3, 4, 5]

    def test_zero_length(self):
        layout = StripeLayout(stripe_count=2, stripe_bytes=1024, first_target=0)
        assert layout.targets_for(0, 0, 8) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StripeLayout(stripe_count=0, stripe_bytes=1024, first_target=0)


class TestParallelFileSystem:
    def test_create_open_unlink(self):
        pfs = ParallelFileSystem("fs", n_targets=8)
        f = pfs.create("/data/a", 10 * GiB)
        assert pfs.open("/data/a") is f
        pfs.unlink("/data/a")
        with pytest.raises(FileNotFoundError):
            pfs.open("/data/a")

    def test_duplicate_create_rejected(self):
        pfs = ParallelFileSystem("fs")
        pfs.create("/x", 1024)
        with pytest.raises(FileExistsError):
            pfs.create("/x", 1024)

    def test_capacity_enforced(self):
        pfs = ParallelFileSystem("fs", n_targets=2, capacity_TB_per_target=0.001)
        with pytest.raises(OSError):
            pfs.create("/huge", 10 ** 13)

    def test_wide_stripe_reads_faster(self):
        pfs = ParallelFileSystem("fs", n_targets=16, target_GBps=5.0)
        wide = pfs.create("/wide", 100 * GiB, stripe_count=16)
        narrow = pfs.create("/narrow", 100 * GiB, stripe_count=1)
        assert pfs.read_time(wide) < pfs.read_time(narrow) / 8

    def test_stripe_count_capped_at_targets(self):
        pfs = ParallelFileSystem("fs", n_targets=4)
        f = pfs.create("/x", 1 * GiB, stripe_count=100)
        assert f.layout.stripe_count == 4

    def test_contention_slows_reads(self):
        pfs = ParallelFileSystem("fs", n_targets=8)
        f = pfs.create("/shared", 10 * GiB, stripe_count=8)
        alone = pfs.read_time(f)
        contended = pfs.read_time(f, concurrent_clients=10)
        assert contended == pytest.approx(alone * 10)

    def test_writes_slower_than_reads(self):
        pfs = ParallelFileSystem("fs", n_targets=4)
        f = pfs.create("/x", 10 * GiB)
        assert pfs.write_time(f) > pfs.read_time(f)

    def test_usage_tracking(self):
        pfs = ParallelFileSystem("fs", n_targets=4)
        pfs.create("/a", 4 * GiB, stripe_count=4)
        assert pfs.used_bytes == 4 * GiB
        pfs.unlink("/a")
        assert pfs.used_bytes == 0

    def test_aggregate_bandwidth_from_layout(self):
        pfs = ParallelFileSystem("fs", n_targets=8, target_GBps=5.0)
        f = pfs.create("/x", GiB, stripe_count=4)
        assert pfs.aggregate_read_GBps(f) == 20.0


class TestNam:
    def test_stage_and_read(self):
        nam = NetworkAttachedMemory(capacity_GB=10)
        t_stage = nam.stage("ds", 5 * GiB)
        assert t_stage > 0
        assert nam.contains("ds")
        assert nam.read_time("ds") > 0

    def test_capacity_enforced(self):
        nam = NetworkAttachedMemory(capacity_GB=1)
        with pytest.raises(MemoryError):
            nam.stage("big", 2 * GiB)

    def test_duplicate_stage_rejected(self):
        nam = NetworkAttachedMemory(capacity_GB=10)
        nam.stage("ds", GiB)
        with pytest.raises(FileExistsError):
            nam.stage("ds", GiB)

    def test_evict_frees_space(self):
        nam = NetworkAttachedMemory(capacity_GB=2)
        nam.stage("a", GiB)
        nam.evict("a")
        nam.stage("b", 2 * GiB)   # fits again

    def test_missing_dataset(self):
        nam = NetworkAttachedMemory()
        with pytest.raises(FileNotFoundError):
            nam.read_time("nope")
        with pytest.raises(FileNotFoundError):
            nam.evict("nope")

    def test_concurrent_readers_share_bandwidth(self):
        nam = NetworkAttachedMemory(capacity_GB=10)
        nam.stage("ds", 4 * GiB)
        assert nam.read_time("ds", concurrent_readers=8) > \
            nam.read_time("ds", concurrent_readers=1) * 4


class TestDatasetSharingStudy:
    """E10: the NAM's raison d'être."""

    def _study(self, n=10):
        return DatasetSharingStudy(dataset_bytes=50 * GiB, n_members=n)

    def test_nam_faster_than_duplicates(self):
        assert self._study().speedup() > 2.0

    def test_traffic_reduction_is_n(self):
        study = self._study(n=12)
        assert study.traffic_reduction() == pytest.approx(12.0)

    def test_single_copy_stored(self):
        assert self._study().nam_shared()["copies_stored"] == 1.0
        assert self._study(n=7).baseline_duplicate_downloads()[
            "copies_stored"] == 7.0

    def test_speedup_grows_with_members(self):
        assert self._study(n=20).speedup() > self._study(n=4).speedup()


class TestTieredStore:
    def test_small_dataset_lands_in_hbm(self):
        store = TieredStore.dam_node()
        slices = store.put("tiny", 1 * GiB)
        assert [s.tier for s in slices] == [MemoryTier.HBM]

    def test_large_dataset_spills_down(self):
        store = TieredStore.dam_node()
        slices = store.put("big", 500 * GiB)
        tiers = [s.tier for s in slices]
        assert tiers == [MemoryTier.HBM, MemoryTier.DDR, MemoryTier.NVM]

    def test_cluster_node_spills_to_pfs(self):
        store = TieredStore.cluster_node()
        slices = store.put("big", 500 * GiB)
        assert slices[-1].tier == MemoryTier.PFS

    def test_dam_keeps_more_resident_fast(self):
        dam = TieredStore.dam_node()
        cluster = TieredStore.cluster_node()
        dam.put("ds", 300 * GiB)
        cluster.put("ds", 300 * GiB)
        assert dam.resident_fraction_fast("ds") > \
            cluster.resident_fraction_fast("ds")

    def test_drop_frees_capacity(self):
        store = TieredStore(hbm_GB=0, ddr_GB=10, nvm_GB=0, pfs_GB=0)
        store.put("a", 10 * GiB)
        with pytest.raises(MemoryError):
            store.put("b", GiB)
        store.drop("a")
        store.put("b", GiB)

    def test_duplicate_put_rejected(self):
        store = TieredStore.dam_node()
        store.put("x", GiB)
        with pytest.raises(FileExistsError):
            store.put("x", GiB)

    def test_missing_placement(self):
        with pytest.raises(FileNotFoundError):
            TieredStore.dam_node().placement("ghost")

    def test_read_time_dominated_by_slowest_tier(self):
        store = TieredStore.dam_node()
        store.put("spilled", 500 * GiB)
        slices = store.placement("spilled")
        slowest = max(s.read_time() for s in slices)
        assert store.read_time("spilled") == pytest.approx(slowest)

    def test_hbm_faster_than_nvm(self):
        store = TieredStore.dam_node()
        store.put("hot", 1 * GiB)
        store2 = TieredStore(hbm_GB=0, ddr_GB=0, nvm_GB=100)
        store2.put("cold", 1 * GiB)
        assert store.read_time("hot") < store2.read_time("cold")

    @given(size_gb=st.integers(min_value=1, max_value=2400))
    @settings(max_examples=50, deadline=None)
    def test_property_placement_conserves_bytes(self, size_gb):
        store = TieredStore.dam_node()
        slices = store.put("ds", size_gb * GiB)
        assert sum(s.size_bytes for s in slices) == size_gb * GiB

    @given(sizes=st.lists(st.integers(min_value=1, max_value=200),
                          min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_property_capacity_never_exceeded(self, sizes):
        store = TieredStore(hbm_GB=32, ddr_GB=384, nvm_GB=2048, pfs_GB=10000)
        for i, gb in enumerate(sizes):
            store.put(f"d{i}", gb * GiB)
        for tier in (MemoryTier.HBM, MemoryTier.DDR, MemoryTier.NVM):
            assert store.free_bytes(tier) >= 0


class TestPfsHealth:
    """The structured health surface behind the serving/storage drill."""

    def test_clean_pfs_is_healthy(self):
        pfs = ParallelFileSystem("fs", n_targets=4)
        report = pfs.health()
        assert report.ok and not report.degraded
        assert report.suspicion == 0.0
        assert pfs.healthy

    def test_ost_loss_is_gray_not_dead(self):
        pfs = ParallelFileSystem("fs", n_targets=4)
        pfs.fail_target(0)
        report = pfs.health()
        assert report.ok            # still answering
        assert report.degraded      # but visibly impaired
        assert "1/4 OSTs failed" in report.detail
        assert report.suspicion > 0.0
        assert not pfs.healthy

    def test_total_loss_is_dead(self):
        pfs = ParallelFileSystem("fs", n_targets=2)
        pfs.fail_target(0)
        pfs.fail_target(1)
        assert not pfs.health().ok

    def test_recovery_restores_health(self):
        pfs = ParallelFileSystem("fs", n_targets=4)
        pfs.fail_target(2)
        pfs.recover_target(2)
        assert pfs.healthy

    def test_health_published_to_enabled_registry(self):
        from repro import telemetry

        pfs = ParallelFileSystem("fs", n_targets=4)
        with telemetry.capture() as (_, registry):
            pfs.fail_target(1)
            assert registry.value("component_health_degraded",
                                  component="pfs:fs") == 1.0
            pfs.recover_target(1)
            assert registry.value("component_health_degraded",
                                  component="pfs:fs") == 0.0
