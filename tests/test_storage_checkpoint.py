"""Checkpoint round-trips, integrity verification and replication.

Complements ``test_extensions.py``'s basic save/restore coverage with the
resilience-facing surface: CRC32 verification (bit-rot and truncation both
raise :class:`CheckpointError`), per-target records, replication to both
paths, and policy-driven restore order.
"""

import numpy as np
import pytest

from repro.resilience import CheckpointPolicy
from repro.storage import NetworkAttachedMemory, ParallelFileSystem
from repro.storage.checkpoint import (
    CheckpointError,
    CheckpointManager,
    state_nbytes,
)


def _state(seed=0, n=512):
    rng = np.random.default_rng(seed)
    return {"w": rng.normal(size=n), "b": rng.normal(size=8)}


@pytest.fixture
def mgr():
    return CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=1),
                             pfs=ParallelFileSystem("fs", n_targets=4))


class TestRoundTrip:
    @pytest.mark.parametrize("target", ["nam", "pfs"])
    def test_roundtrip_per_target(self, mgr, target):
        state = _state()
        t_write = mgr.save("m", step=9, state=state, target=target)
        restored, step, t_read = mgr.restore("m", target=target)
        assert step == 9
        assert t_write > 0 and t_read > 0
        for key in state:
            np.testing.assert_array_equal(restored[key], state[key])

    def test_restore_falls_back_to_other_target_when_preferred_missing(self, mgr):
        mgr.save("m", step=3, state=_state(), target="pfs")
        _, step, _ = mgr.restore("m")          # prefer="nam", only pfs copy
        assert step == 3

    def test_replicate_writes_both_targets(self, mgr):
        t = mgr.save("m", step=5, state=_state(), replicate=True)
        assert mgr.exists("m", target="nam")
        assert mgr.exists("m", target="pfs")
        assert t >= max(mgr.save("solo", step=5, state=_state(), target=tgt)
                        for tgt in ("nam", "pfs"))

    def test_replicate_requires_both_backends(self):
        solo = CheckpointManager(nam=NetworkAttachedMemory(capacity_GB=1))
        with pytest.raises(CheckpointError):
            solo.save("m", step=1, state=_state(), replicate=True)

    def test_latest_step_across_targets(self, mgr):
        mgr.save("m", step=4, state=_state(), target="pfs")
        mgr.save("m", step=8, state=_state(), target="nam")
        assert mgr.latest_step("m") == 8
        with pytest.raises(CheckpointError):
            mgr.latest_step("ghost")


class TestIntegrity:
    def test_truncated_payload_raises(self, mgr):
        mgr.save("m", step=1, state=_state())
        mgr.corrupt("m", target="nam", truncate=True)
        with pytest.raises(CheckpointError, match="truncated"):
            mgr.restore("m", target="nam")

    def test_bit_flip_raises_checksum_mismatch(self, mgr):
        mgr.save("m", step=1, state=_state())
        mgr.corrupt("m", target="nam")
        with pytest.raises(CheckpointError, match="checksum"):
            mgr.restore("m", target="nam")

    def test_corrupting_missing_copy_raises(self, mgr):
        with pytest.raises(CheckpointError):
            mgr.corrupt("ghost")

    def test_intact_replica_unaffected_by_corruption(self, mgr):
        state = _state()
        mgr.save("m", step=2, state=state, replicate=True)
        mgr.corrupt("m", target="nam", truncate=True)
        restored, step, _ = mgr.restore("m", target="pfs")
        assert step == 2
        np.testing.assert_array_equal(restored["w"], state["w"])


class TestDrop:
    def test_drop_removes_all_copies(self, mgr):
        mgr.save("m", step=1, state=_state(), replicate=True)
        mgr.drop("m")
        assert not mgr.exists("m")
        with pytest.raises(CheckpointError):
            mgr.restore("m")

    def test_drop_single_target(self, mgr):
        mgr.save("m", step=1, state=_state(), replicate=True)
        mgr.drop("m", target="nam")
        assert not mgr.exists("m", target="nam")
        assert mgr.exists("m", target="pfs")

    def test_drop_missing_raises(self, mgr):
        with pytest.raises(CheckpointError):
            mgr.drop("ghost")


class TestPolicy:
    def test_restore_order_follows_preference(self):
        assert CheckpointPolicy(prefer="nam").restore_order() == ("nam", "pfs")
        assert CheckpointPolicy(prefer="pfs").restore_order() == ("pfs", "nam")
        assert CheckpointPolicy(fallback=False).restore_order() == ("nam",)

    def test_cadence(self):
        policy = CheckpointPolicy(every_steps=4)
        assert [s for s in range(1, 13) if policy.should_checkpoint(s)] == \
               [4, 8, 12]

    def test_replication_requires_fallback(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(fallback=False, replicate=True)

    def test_invalid_cadence_rejected(self):
        with pytest.raises(ValueError):
            CheckpointPolicy(every_steps=0)


def test_state_nbytes_counts_payload():
    state = {"w": np.zeros(100, dtype=np.float64)}
    assert state_nbytes(state) == 800


def test_path_comparison_nam_faster(mgr):
    comparison = mgr.path_comparison(1 << 30, concurrent_writers=16)
    assert comparison["nam"] < comparison["pfs"]
