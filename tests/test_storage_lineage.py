"""Checkpoint lineage: versioning, retention GC, verified restore, scrub."""

import numpy as np
import pytest

from repro import telemetry
from repro.resilience.policy import CheckpointPolicy
from repro.storage.checkpoint import (
    CheckpointError,
    CheckpointManager,
    CheckpointRetention,
    shard_digests,
)
from repro.storage.nam import NetworkAttachedMemory
from repro.storage.pfs import ParallelFileSystem


def make_manager(keep_last=3, anchor_every=0, prefer="nam"):
    return CheckpointManager(
        nam=NetworkAttachedMemory(capacity_GB=1),
        pfs=ParallelFileSystem("pfs", n_targets=4),
        prefer=prefer,
        retention=CheckpointRetention(keep_last=keep_last,
                                      anchor_every=anchor_every))


def state_at(step):
    return {"w": np.full(16, float(step)), "b": np.arange(4.0) + step}


class TestLineage:
    def test_versions_accumulate_within_retention(self):
        mgr = make_manager(keep_last=3)
        for step in (1, 2, 3):
            mgr.save("m", step=step, state=state_at(step))
        records = mgr.versions("m", "nam")
        assert [r.version for r in records] == [0, 1, 2]
        assert [r.step for r in records] == [1, 2, 3]

    def test_restore_returns_newest_version(self):
        mgr = make_manager()
        for step in (10, 20, 30):
            mgr.save("m", step=step, state=state_at(step))
        state, step, _ = mgr.restore("m")
        assert step == 30
        np.testing.assert_array_equal(state["w"], np.full(16, 30.0))

    def test_replicated_save_shares_version_across_targets(self):
        mgr = make_manager()
        mgr.save("m", step=5, state=state_at(5), replicate=True)
        nam, = mgr.versions("m", "nam")
        pfs, = mgr.versions("m", "pfs")
        assert nam.version == pfs.version == 0
        assert nam.shards == pfs.shards == shard_digests(state_at(5))


class TestRetentionGC:
    def test_keep_last_window(self):
        mgr = make_manager(keep_last=2)
        with telemetry.capture() as (_, registry):
            for step in range(1, 6):
                mgr.save("m", step=step, state=state_at(step))
            deleted = [v for _, inst in
                       registry.members("checkpoint_gc_deleted_total")
                       for v in [inst.value]]
        assert [r.step for r in mgr.versions("m", "nam")] == [4, 5]
        assert sum(deleted) == 3

    def test_anchors_survive_past_window(self):
        mgr = make_manager(keep_last=2, anchor_every=4)
        for step in range(1, 10):
            mgr.save("m", step=step, state=state_at(step))
        kept = [r.step for r in mgr.versions("m", "nam")]
        assert kept == [4, 8, 9]   # anchors 4 & 8 plus last-2 window {8, 9}

    def test_gc_never_deletes_newest_verified(self):
        """The load-bearing invariant: when rot lands on every version
        inside the keep window, the newest *verified* (older) version
        survives GC even though plain retention would delete it."""
        mgr = make_manager(keep_last=3)
        with telemetry.capture():
            for step in (1, 2, 3):
                mgr.save("m", step=step, state=state_at(step))
            mgr.corrupt("m", "nam", version=1)
            mgr.corrupt("m", "nam", version=2)
            # Tighten the window so plain retention would delete step 1,
            # the only copy that still verifies.
            mgr.retention = CheckpointRetention(keep_last=1)
            mgr.gc("m", "nam")
        kept = [r.step for r in mgr.versions("m", "nam")]
        assert 1 in kept, "newest verified version must survive GC"
        restore = mgr.restore_latest_verified(
            "m", CheckpointPolicy(fallback=False))
        assert restore.step == 1

    def test_gc_on_intact_lineage_ignores_verified_bonus(self):
        """With everything intact the newest-verified rule adds nothing:
        the window alone decides, so old versions are actually pruned."""
        mgr = make_manager(keep_last=1)
        with telemetry.capture():
            for step in (1, 2, 3):
                mgr.save("m", step=step, state=state_at(step))
        assert [r.step for r in mgr.versions("m", "nam")] == [3]


class TestVerifiedRestore:
    def test_rot_on_newest_falls_back_one_version(self):
        mgr = make_manager()
        with telemetry.capture():
            for step in (1, 2, 3):
                mgr.save("m", step=step, state=state_at(step))
            mgr.corrupt("m", "nam")    # newest NAM copy rots
            restore = mgr.restore_latest_verified(
                "m", CheckpointPolicy(fallback=False))
        assert restore.step == 2 and restore.rollback_versions == 1
        assert restore.target == "nam"

    def test_replica_fallback_beats_rollback(self):
        mgr = make_manager()
        with telemetry.capture():
            for step in (1, 2):
                mgr.save("m", step=step, state=state_at(step),
                         replicate=True)
            mgr.corrupt("m", "nam")    # newest NAM rots; PFS replica intact
            restore = mgr.restore_latest_verified("m", CheckpointPolicy())
        assert restore.step == 2 and restore.rollback_versions == 0
        assert restore.target == "pfs"

    def test_bounded_rollback_raises(self):
        mgr = make_manager(keep_last=5)
        with telemetry.capture():
            for step in (1, 2, 3):
                mgr.save("m", step=step, state=state_at(step))
            for version in (0, 1, 2):
                mgr.corrupt("m", "nam", version=version)
            with pytest.raises(CheckpointError):
                mgr.restore_latest_verified(
                    "m", CheckpointPolicy(fallback=False), max_rollback=1)

    def test_detection_counted_once_per_copy(self):
        mgr = make_manager()
        with telemetry.capture() as (_, registry):
            mgr.save("m", step=1, state=state_at(1))
            mgr.save("m", step=2, state=state_at(2))
            mgr.corrupt("m", "nam")
            mgr.restore_latest_verified(
                "m", CheckpointPolicy(fallback=False))
            mgr.scrub("m")             # re-checks the same quarantined copy
            injected = sum(i.value for _, i in registry.members(
                "integrity_corruptions_injected"))
            detected = sum(i.value for _, i in registry.members(
                "integrity_corruptions_detected"))
        assert injected == detected == 1.0


class TestScrub:
    def test_scrub_finds_rot_on_never_restored_version(self):
        mgr = make_manager()
        with telemetry.capture() as (_, registry):
            for step in (1, 2, 3):
                mgr.save("m", step=step, state=state_at(step))
            mgr.corrupt("m", "nam", version=0)   # oldest, never restored
            result = mgr.scrub("m")
            injected = sum(i.value for _, i in registry.members(
                "integrity_corruptions_injected"))
            detected = sum(i.value for _, i in registry.members(
                "integrity_corruptions_detected"))
        assert result == {"checked": 3, "corrupt": 1}
        assert injected == detected == 1.0

    def test_clean_scrub(self):
        mgr = make_manager()
        with telemetry.capture():
            mgr.save("m", step=1, state=state_at(1), replicate=True)
        assert mgr.scrub() == {"checked": 2, "corrupt": 0}

    def test_double_injection_not_double_counted(self):
        mgr = make_manager()
        with telemetry.capture() as (_, registry):
            mgr.save("m", step=1, state=state_at(1))
            mgr.corrupt("m", "nam")
            mgr.corrupt("m", "nam")   # rot on an already-rotten copy
            injected = sum(i.value for _, i in registry.members(
                "integrity_corruptions_injected"))
        assert injected == 1.0
