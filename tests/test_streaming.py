"""The (near) real-time RS pipeline (Fig. 3 A) on the DES engine."""

import numpy as np
import pytest

from repro.core.streaming import (
    StreamingConfig,
    capacity_for_deadline,
    simulate_stream,
)


def cfg(**kw):
    defaults = dict(arrival_rate_per_s=2.0, service_time_s=0.4,
                    n_servers=2, duration_s=500.0, seed=0)
    defaults.update(kw)
    return StreamingConfig(**defaults)


class TestConfig:
    def test_offered_load(self):
        assert cfg().offered_load == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            cfg(arrival_rate_per_s=0.0)
        with pytest.raises(ValueError):
            cfg(service_time_s=-1.0)
        with pytest.raises(ValueError):
            cfg(n_servers=0)
        with pytest.raises(ValueError):
            cfg(duration_s=0.0)


class TestSimulation:
    def test_completes_roughly_rate_times_duration(self):
        report = simulate_stream(cfg())
        expected = 2.0 * 500.0
        assert 0.85 * expected < report.n_completed < 1.15 * expected

    def test_latency_at_least_service_time(self):
        report = simulate_stream(cfg(service_jitter=0.0))
        assert report.latencies_s.min() >= 0.4 - 1e-9

    def test_underloaded_system_has_low_latency(self):
        report = simulate_stream(cfg(n_servers=8))
        assert report.p50 < 0.6            # barely above one service time
        assert report.utilisation < 0.2

    def test_overloaded_system_queues_grow(self):
        light = simulate_stream(cfg(n_servers=4))
        heavy = simulate_stream(cfg(arrival_rate_per_s=12.0, n_servers=4))
        assert heavy.p99 > light.p99 * 2
        assert heavy.max_queue_depth > light.max_queue_depth

    def test_utilisation_tracks_offered_load(self):
        config = cfg(arrival_rate_per_s=3.0, n_servers=2,
                     duration_s=2000.0)
        report = simulate_stream(config)
        assert report.utilisation == pytest.approx(config.offered_load,
                                                   rel=0.15)

    def test_deterministic(self):
        a = simulate_stream(cfg())
        b = simulate_stream(cfg())
        np.testing.assert_array_equal(a.latencies_s, b.latencies_s)

    def test_more_servers_never_hurt_latency(self):
        p99s = [simulate_stream(cfg(arrival_rate_per_s=6.0,
                                    n_servers=n)).p99
                for n in (3, 6, 12)]
        assert p99s[0] >= p99s[1] >= p99s[2] * 0.9

    def test_percentiles_and_deadline(self):
        report = simulate_stream(cfg(n_servers=8))
        assert report.p50 <= report.p99
        assert report.meets_deadline(10.0)
        assert not report.meets_deadline(0.01)

    def test_empty_report_percentile_raises(self):
        report = simulate_stream(cfg(arrival_rate_per_s=1e-4,
                                     duration_s=1.0))
        if report.n_completed == 0:
            with pytest.raises(ValueError):
                report.p99


class TestCapacityPlanning:
    def test_finds_minimal_capacity(self):
        n, report = capacity_for_deadline(
            arrival_rate_per_s=5.0, service_time_s=0.5, deadline_s=1.5,
            duration_s=600.0)
        assert n >= 3                      # λ·s = 2.5 is the hard floor
        assert report.meets_deadline(1.5)

    def test_tighter_deadline_needs_more_servers(self):
        loose, _ = capacity_for_deadline(5.0, 0.5, deadline_s=5.0,
                                         duration_s=600.0)
        tight, _ = capacity_for_deadline(5.0, 0.5, deadline_s=0.8,
                                         duration_s=600.0)
        assert tight >= loose

    def test_impossible_deadline_rejected(self):
        with pytest.raises(ValueError):
            capacity_for_deadline(1.0, 1.0, deadline_s=0.5)

    def test_capacity_cap_enforced(self):
        with pytest.raises(RuntimeError):
            capacity_for_deadline(200.0, 1.0, deadline_s=1.05,
                                  max_servers=4, duration_s=100.0)
