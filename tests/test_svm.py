"""SVM stack: kernels, SMO, one-vs-rest, the MPI cascade (E4), ensembles."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import run_spmd
from repro.svm import (
    CascadeSVM,
    MulticlassSVC,
    SVC,
    SvmEnsemble,
    cascade_train,
    linear_kernel,
    make_kernel,
    poly_kernel,
    rbf_kernel,
)
from repro.svm.cascade import serial_train

rng = np.random.default_rng(0)


def blobs(n_per_class=60, gap=1.5, seed=0):
    r = np.random.default_rng(seed)
    X = np.concatenate([r.normal(-gap, 0.8, size=(n_per_class, 2)),
                        r.normal(gap, 0.8, size=(n_per_class, 2))])
    y = np.array([-1.0] * n_per_class + [1.0] * n_per_class)
    perm = r.permutation(len(y))
    return X[perm], y[perm]


class TestKernels:
    def test_linear_is_gram_matrix(self):
        A = rng.normal(size=(3, 4))
        np.testing.assert_allclose(linear_kernel(A, A), A @ A.T)

    def test_rbf_diagonal_is_one(self):
        A = rng.normal(size=(5, 3))
        K = rbf_kernel(A, A, gamma=0.7)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_rbf_decays_with_distance(self):
        a = np.array([[0.0, 0.0]])
        near = np.array([[0.1, 0.0]])
        far = np.array([[5.0, 0.0]])
        assert rbf_kernel(a, near)[0, 0] > rbf_kernel(a, far)[0, 0]

    def test_rbf_symmetric_psd(self):
        A = rng.normal(size=(10, 3))
        K = rbf_kernel(A, A, gamma=0.5)
        np.testing.assert_allclose(K, K.T)
        eigs = np.linalg.eigvalsh(K)
        assert eigs.min() > -1e-9

    def test_poly(self):
        A = np.array([[1.0, 0.0]])
        B = np.array([[2.0, 0.0]])
        assert poly_kernel(A, B, degree=2, coef0=1.0)[0, 0] == 9.0

    def test_factory_validation(self):
        with pytest.raises(ValueError):
            make_kernel("mystery")
        with pytest.raises(ValueError):
            make_kernel("rbf", gamma=-1.0)

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_property_rbf_bounded(self, n):
        A = np.random.default_rng(n).normal(size=(n, 3))
        K = rbf_kernel(A, A, gamma=1.0)
        assert (K <= 1.0 + 1e-12).all() and (K >= 0.0).all()


class TestSVC:
    def test_separable_blobs(self):
        X, y = blobs()
        svc = SVC(kernel="rbf", gamma=0.5).fit(X, y)
        assert svc.score(X, y) > 0.95

    def test_linear_kernel_on_linear_problem(self):
        X, y = blobs(gap=2.5)
        svc = SVC(kernel="linear", C=1.0).fit(X, y)
        assert svc.score(X, y) > 0.95

    def test_sparse_support_vectors(self):
        X, y = blobs(gap=3.0)
        svc = SVC(kernel="rbf", gamma=0.5).fit(X, y)
        assert svc.n_support_ < len(X) / 2

    def test_decision_function_sign_matches_predict(self):
        X, y = blobs()
        svc = SVC(kernel="rbf", gamma=0.5).fit(X, y)
        scores = svc.decision_function(X)
        np.testing.assert_array_equal(np.sign(scores) >= 0,
                                      svc.predict(X) > 0)

    def test_nonlinear_problem_needs_rbf(self):
        # Concentric circles: linear fails, RBF succeeds.
        r = np.random.default_rng(1)
        theta = r.uniform(0, 2 * np.pi, 120)
        radius = np.concatenate([np.full(60, 1.0), np.full(60, 3.0)])
        X = np.stack([radius * np.cos(theta), radius * np.sin(theta)], axis=1)
        X += r.normal(0, 0.1, X.shape)
        y = np.array([-1.0] * 60 + [1.0] * 60)
        rbf = SVC(kernel="rbf", gamma=1.0).fit(X, y)
        lin = SVC(kernel="linear").fit(X, y)
        assert rbf.score(X, y) > 0.95
        assert lin.score(X, y) < 0.8

    def test_label_validation(self):
        with pytest.raises(ValueError):
            SVC().fit(np.ones((4, 2)), np.array([0.0, 1.0, 0.0, 1.0]))
        with pytest.raises(ValueError):
            SVC().fit(np.ones((4, 2)), np.array([1.0, 1.0, 1.0, 1.0]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            SVC().predict(np.ones((2, 2)))

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            SVC(C=0.0)

    def test_clone_unfitted(self):
        svc = SVC(C=2.0, kernel="rbf", gamma=0.3)
        clone = svc.clone_unfitted()
        assert clone.C == 2.0 and clone.support_vectors_ is None

    def test_deterministic(self):
        X, y = blobs()
        a = SVC(kernel="rbf", gamma=0.5, seed=1).fit(X, y)
        b = SVC(kernel="rbf", gamma=0.5, seed=1).fit(X, y)
        np.testing.assert_array_equal(a.decision_function(X),
                                      b.decision_function(X))


class TestMulticlass:
    def test_three_classes(self):
        r = np.random.default_rng(2)
        centers = np.array([[-3, 0], [3, 0], [0, 3]])
        X = np.concatenate([r.normal(c, 0.6, size=(40, 2)) for c in centers])
        y = np.repeat([0, 1, 2], 40)
        clf = MulticlassSVC(kernel="rbf", gamma=0.5).fit(X, y)
        assert clf.score(X, y) > 0.95

    def test_needs_two_classes(self):
        with pytest.raises(ValueError):
            MulticlassSVC().fit(np.ones((3, 2)), np.array([1, 1, 1]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MulticlassSVC().predict(np.ones((2, 2)))


class TestCascade:
    def test_accuracy_matches_serial(self):
        X, y = blobs(n_per_class=150, seed=4)
        serial_machine, _ = serial_train(X, y)

        def fn(comm):
            shard = np.arange(comm.rank, len(y), comm.size)
            return cascade_train(comm, X[shard], y[shard])

        result = run_spmd(fn, 4)[0]
        assert isinstance(result, CascadeSVM)
        assert result.score(X, y) >= serial_machine.score(X, y) - 0.03

    def test_non_root_ranks_return_none(self):
        X, y = blobs(n_per_class=40)

        def fn(comm):
            shard = np.arange(comm.rank, len(y), comm.size)
            return cascade_train(comm, X[shard], y[shard])

        out = run_spmd(fn, 4)
        assert out[0] is not None
        assert all(o is None for o in out[1:])

    @pytest.mark.parametrize("ws", [1, 2, 3, 4, 5])
    def test_works_at_any_world_size(self, ws):
        X, y = blobs(n_per_class=50, seed=5)

        def fn(comm):
            shard = np.arange(comm.rank, len(y), comm.size)
            return cascade_train(comm, X[shard], y[shard])

        result = run_spmd(fn, ws)[0]
        assert result.score(X, y) > 0.9

    def test_levels_are_log2(self):
        X, y = blobs(n_per_class=40)

        def fn(comm):
            shard = np.arange(comm.rank, len(y), comm.size)
            return cascade_train(comm, X[shard], y[shard])

        assert run_spmd(fn, 4)[0].n_levels == 2
        assert run_spmd(fn, 8)[0].n_levels == 3

    def test_exchanges_only_support_vectors(self):
        X, y = blobs(n_per_class=150, gap=3.0, seed=6)

        def fn(comm):
            shard = np.arange(comm.rank, len(y), comm.size)
            return cascade_train(comm, X[shard], y[shard])

        result = run_spmd(fn, 4)[0]
        # Far fewer vectors travel than raw data rows.
        assert result.total_sv_exchanged < len(y) / 2

    def test_local_times_gathered(self):
        X, y = blobs(n_per_class=30)

        def fn(comm):
            shard = np.arange(comm.rank, len(y), comm.size)
            return cascade_train(comm, X[shard], y[shard])

        result = run_spmd(fn, 4)[0]
        assert len(result.local_times) == 4
        assert all(t > 0 for t in result.local_times)


class TestEnsemble:
    def test_accuracy_on_blobs(self):
        X, y = blobs(n_per_class=100, seed=7)
        ens = SvmEnsemble(n_members=5, subsample_size=30, kernel="rbf",
                          gamma=0.5).fit(X, y)
        assert ens.score(X, y) > 0.9

    def test_members_trained_on_subsamples(self):
        X, y = blobs(n_per_class=100, seed=8)
        ens = SvmEnsemble(n_members=3, subsample_size=20).fit(X, y)
        assert len(ens.members_) == 3
        for member in ens.members_:
            assert member.n_support_ <= 20

    def test_validation(self):
        with pytest.raises(ValueError):
            SvmEnsemble(n_members=0)
        with pytest.raises(ValueError):
            SvmEnsemble(subsample_size=2)
        with pytest.raises(RuntimeError):
            SvmEnsemble().predict(np.ones((2, 2)))
