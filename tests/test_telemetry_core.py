"""Unit tests for the telemetry core: spans, metrics, exporters, capture."""

import json
import threading

import pytest

from repro import telemetry
from repro.telemetry.export import (
    assign_ids,
    chrome_complete_event,
    chrome_instant_event,
    chrome_trace_json,
    run_summary,
    to_chrome_trace,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import Span, Tracer, validate_nesting


# -- Tracer ------------------------------------------------------------------

class TestTracer:
    def test_record_and_order(self):
        tr = Tracer()
        tr.record("b", "comm", 1.0, 0.5, track="mpi", lane="rank000")
        tr.record("a", "comm", 0.5, 0.2, track="mpi", lane="rank000")
        assert [s.name for s in tr.spans] == ["a", "b"]
        assert len(tr) == 2

    def test_seq_breaks_ties_in_recording_order(self):
        tr = Tracer()
        for name in ("first", "second", "third"):
            tr.record(name, "comm", 2.0, 0.0, track="t", lane="l")
        assert [s.name for s in tr.spans] == ["first", "second", "third"]
        assert [s.seq for s in tr.spans] == [0, 1, 2]

    def test_seq_is_per_track_lane(self):
        tr = Tracer()
        tr.record("x", "comm", 0.0, 1.0, track="a", lane="0")
        tr.record("y", "comm", 0.0, 1.0, track="b", lane="0")
        assert all(s.seq == 0 for s in tr.spans)

    def test_instant(self):
        tr = Tracer()
        tr.instant("fault", "fault", 3.0, track="faults", node=2)
        (s,) = tr.spans
        assert s.is_instant and s.start_s == 3.0
        assert s.attr_dict() == {"node": 2}

    def test_span_context_manager_reads_clock(self):
        tr = Tracer()
        clock = iter([1.0, 4.0])
        with tr.span("step", "train", lambda: next(clock), track="train"):
            pass
        (s,) = tr.spans
        assert (s.start_s, s.duration_s) == (1.0, 3.0)

    def test_disabled_tracer_never_calls_clock(self):
        tr = Tracer(enabled=False)

        def boom():
            raise AssertionError("clock read by disabled tracer")

        with tr.span("step", "train", boom):
            pass
        tr.record("x", "comm", 0.0, 1.0)
        tr.instant("y", "fault", 0.0)
        assert len(tr) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record("x", "comm", 1.0, -0.1)

    def test_queries_and_clear(self):
        tr = Tracer()
        tr.record("a", "comm", 0.0, 1.0, track="mpi")
        tr.record("b", "compute", 0.0, 1.0, track="train")
        assert tr.tracks() == ["mpi", "train"]
        assert [s.name for s in tr.by_track("mpi")] == ["a"]
        assert [s.name for s in tr.by_category("compute")] == ["b"]
        tr.clear()
        assert len(tr) == 0

    def test_thread_safety_all_spans_kept(self):
        tr = Tracer()

        def work(i):
            for j in range(100):
                tr.record(f"s{i}-{j}", "comm", float(j), 0.1,
                          track="mpi", lane=f"rank{i:03d}")

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr) == 400
        # Per-lane seq reflects that lane's own recording order.
        for i in range(4):
            lane = [s for s in tr.spans if s.lane == f"rank{i:03d}"]
            assert sorted(s.seq for s in lane) == list(range(100))


class TestValidateNesting:
    def _span(self, start, dur, lane="0"):
        return Span("s", "comm", start, dur, track="t", lane=lane)

    def test_disjoint_ok(self):
        assert validate_nesting([self._span(0, 1), self._span(2, 1)]) == []

    def test_contained_ok(self):
        assert validate_nesting([self._span(0, 10), self._span(2, 3)]) == []

    def test_partial_overlap_flagged(self):
        bad = validate_nesting([self._span(0, 5), self._span(3, 5)])
        assert len(bad) == 1

    def test_overlap_on_different_lanes_ok(self):
        spans = [self._span(0, 5, lane="a"), self._span(3, 5, lane="b")]
        assert validate_nesting(spans) == []

    def test_instants_exempt(self):
        spans = [self._span(0, 5), Span("i", "fault", 2.0, 0.0, track="t")]
        assert validate_nesting(spans) == []


# -- MetricsRegistry ---------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("calls", op="allreduce").inc()
        reg.counter("calls", op="allreduce").inc(2)
        reg.gauge("depth").set(7)
        reg.histogram("lat").observe(0.5)
        reg.histogram("lat").observe(1.5)
        assert reg.value("calls", op="allreduce") == 3
        assert reg.value("depth") == 7
        h = reg.histogram("lat")
        assert h.count == 2 and h.sum == 2.0

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("c", a=1) is reg.counter("c", a=1)
        assert reg.counter("c", a=1) is not reg.counter("c", a=2)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc(5)
        reg.gauge("g").set(3)
        reg.histogram("h").observe(1.0)
        assert reg.names() == []
        assert reg.to_prometheus() == ""

    def test_gauges_over(self):
        reg = MetricsRegistry()
        reg.gauge("serving_invariant_violations").set(0)
        reg.gauge("other_invariant_thing", module="esb").set(2)
        reg.gauge("unrelated").set(9)
        hits = reg.gauges_over(0.0, name_contains="invariant")
        assert hits == [("other_invariant_thing",
                         (("module", "esb"),), 2.0)]

    def test_prometheus_exposition_shape(self):
        reg = MetricsRegistry()
        reg.counter("reqs", outcome="ok").inc(3)
        reg.histogram("lat").observe(1.0)
        text = reg.to_prometheus()
        assert "# TYPE reqs counter" in text
        assert 'reqs{outcome="ok"} 3' in text
        assert "lat_count 1" in text
        assert 'lat{quantile="50"} 1' in text

    def test_exposition_deterministic_under_interleaving(self):
        def build(order):
            reg = MetricsRegistry()
            for name, label in order:
                reg.counter(name, op=label).inc()
            return reg.to_prometheus()

        a = build([("m1", "x"), ("m2", "y"), ("m1", "z")])
        b = build([("m2", "y"), ("m1", "z"), ("m1", "x")])
        assert a == b


# -- exporters ----------------------------------------------------------------

class TestExport:
    def _spans(self):
        return [
            Span("step", "train", 0.0, 2.0, track="train", lane="rank000"),
            Span("allreduce", "comm", 0.5, 1.0, track="mpi", lane="rank000",
                 attrs=(("nbytes", 1024),)),
            Span("crash", "fault", 1.0, 0.0, track="faults", lane="injector"),
        ]

    def test_assign_ids_deterministic(self):
        pids, tids = assign_ids(self._spans())
        assert pids == {"faults": 1, "mpi": 2, "train": 3}
        assert tids[("mpi", "rank000")] == 0

    def test_complete_and_instant_events(self):
        x = chrome_complete_event("n", "c", 1, 0, 2.0, 0.5, {"a": 1})
        assert (x["ph"], x["ts"], x["dur"]) == ("X", 2e6, 0.5e6)
        i = chrome_instant_event("n", "c", 1, 0, 2.0)
        assert (i["ph"], i["s"]) == ("i", "t")

    def test_trace_structure(self):
        trace = to_chrome_trace(self._spans())
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases == {"M", "X", "i"}
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["name"] == "process_name"}
        assert names == {"train", "mpi", "faults"}

    def test_trace_json_byte_deterministic(self):
        assert chrome_trace_json(self._spans()) == \
            chrome_trace_json(self._spans())
        json.loads(chrome_trace_json(self._spans()))  # well-formed

    def test_run_summary_mentions_tracks_and_metrics(self):
        reg = MetricsRegistry()
        reg.counter("calls").inc(4)
        text = run_summary(self._spans(), reg, title="t")
        assert "3 subsystems" in text
        assert "calls: 4" in text


# -- process-wide defaults / capture -----------------------------------------

class TestCapture:
    def test_defaults_are_disabled(self):
        assert not telemetry.get_tracer().enabled
        assert not telemetry.get_registry().enabled

    def test_capture_swaps_and_restores(self):
        before_tracer = telemetry.get_tracer()
        with telemetry.capture() as (tracer, registry):
            assert telemetry.get_tracer() is tracer
            assert telemetry.get_registry() is registry
            assert tracer.enabled and registry.enabled
            tracer.record("x", "comm", 0.0, 1.0)
        assert telemetry.get_tracer() is before_tracer
        assert len(tracer) == 1

    def test_capture_restores_on_exception(self):
        before = telemetry.get_tracer()
        with pytest.raises(RuntimeError):
            with telemetry.capture():
                raise RuntimeError("boom")
        assert telemetry.get_tracer() is before

    def test_nested_captures_do_not_leak(self):
        with telemetry.capture() as (outer, _):
            with telemetry.capture() as (inner, _):
                telemetry.get_tracer().record("i", "comm", 0.0, 1.0)
            telemetry.get_tracer().record("o", "comm", 0.0, 1.0)
        assert [s.name for s in outer.spans] == ["o"]
        assert [s.name for s in inner.spans] == ["i"]
