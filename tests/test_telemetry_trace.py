"""End-to-end trace tests: determinism, coverage, well-formedness, CLI.

These drive the canonical ``repro trace`` scenarios (quick variants) and
assert the acceptance properties literally: same seed → byte-identical
artifacts, spans from ≥4 subsystems on one simulated timebase, valid
nesting per rank lane, and a zero invariant gauge.
"""

import json

import pytest

from repro.telemetry.scenarios import (
    SCENARIOS,
    trace_serving_scenario,
    trace_training_scenario,
)
from repro.telemetry.spans import validate_nesting


@pytest.fixture(scope="module")
def train_artifacts():
    return trace_training_scenario(seed=0, quick=True)


@pytest.fixture(scope="module")
def serve_artifacts():
    return trace_serving_scenario(seed=0, quick=True)


class TestTrainScenario:
    def test_cross_layer_coverage(self, train_artifacts):
        # The acceptance bar: one trace, one timebase, ≥4 subsystems.
        assert set(train_artifacts.tracks) >= {"scheduler", "mpi", "train",
                                               "storage", "faults"}
        assert train_artifacts.n_spans > 50

    def test_byte_identical_rerun(self, train_artifacts):
        again = trace_training_scenario(seed=0, quick=True)
        assert again.trace_json == train_artifacts.trace_json
        assert again.prometheus == train_artifacts.prometheus
        assert again.summary == train_artifacts.summary

    def test_seed_changes_trace(self, train_artifacts):
        other = trace_training_scenario(seed=1, quick=True)
        assert other.trace_json != train_artifacts.trace_json

    def test_trace_is_valid_chrome_json(self, train_artifacts):
        trace = json.loads(train_artifacts.trace_json)
        events = trace["traceEvents"]
        assert {e["ph"] for e in events} == {"M", "X", "i"}
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] >= 0 and e["ts"] >= 0

    def test_rank_lane_spans_nest(self, train_artifacts):
        # Comm/train spans on a rank's lane must nest or be disjoint —
        # a partial overlap means an instrumentation clock bug.
        rank_spans = [s for s in train_artifacts.spans
                      if s.track in ("mpi", "train")]
        assert rank_spans
        assert validate_nesting(rank_spans) == []

    def test_key_events_present(self, train_artifacts):
        names = {s.name for s in train_artifacts.spans}
        assert {"allreduce", "step", "grad-allreduce", "rank-kill",
                "checkpoint-save", "checkpoint-restore", "submit",
                "place"} <= names

    def test_metrics_cover_subsystems(self, train_artifacts):
        prom = train_artifacts.prometheus
        for needle in ("collective_calls_total", "train_steps_total",
                       "checkpoint_writes_total", "faults_injected_total",
                       "scheduler_jobs_completed", "resilience_recoveries"):
            assert needle in prom

    def test_no_invariant_violations(self, train_artifacts):
        assert train_artifacts.ok


class TestServeScenario:
    def test_byte_identical_rerun(self, serve_artifacts):
        again = trace_serving_scenario(seed=0, quick=True)
        assert again.trace_json == serve_artifacts.trace_json
        assert again.prometheus == serve_artifacts.prometheus

    def test_serving_and_fault_tracks(self, serve_artifacts):
        assert {"serving", "faults"} <= set(serve_artifacts.tracks)

    def test_conservation_gauge_zero(self, serve_artifacts):
        assert serve_artifacts.ok
        assert "serving_invariant_violations 0" in serve_artifacts.prometheus

    def test_failover_visible(self, serve_artifacts):
        names = {s.name for s in serve_artifacts.spans}
        assert "failover" in names
        assert "batch" in names


class TestTraceCLI:
    def test_writes_artifacts_and_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace-out"
        rc = main(["trace", "serve", "--quick", "--out", str(out)])
        assert rc == 0
        for fname in ("trace.json", "metrics.prom", "summary.txt"):
            assert (out / fname).read_text().strip()
        json.loads((out / "trace.json").read_text())
        assert "repro trace serve" in capsys.readouterr().out

    def test_scenarios_registry_matches_cli_choices(self):
        assert set(SCENARIOS) == {"train", "serve"}
