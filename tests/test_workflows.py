"""Interoperability workflows: containers, Jupyter kernels, CBRAIN, cloud."""

import pytest

from repro.workflows import (
    AWS_P3_16XLARGE,
    Bourreau,
    CbrainPortal,
    CloudCostModel,
    ContainerImage,
    ContainerRegistry,
    DataLadDataset,
    JupyterKernelSpec,
    JupyterSession,
    ModuleEnvironment,
    NeuroTool,
    singularity_from_docker,
)
from repro.workflows.cbrain import CbrainError
from repro.workflows.cloud import CampaignSpec, FREE_TIER_COLAB
from repro.workflows.containers import (
    ContainerError,
    cloud_docker,
    juwels_singularity,
)
from repro.workflows.jupyter import KernelError, jsc_module_environment


def tf_image(privileged=False, cuda="11.0"):
    return ContainerImage(
        name="tensorflow/tensorflow", tag="2.5.0-gpu", format="docker",
        layers=("ubuntu:20.04", "pip:tensorflow==2.5.0"),
        env=(("TF_VERSION", "2.5.0"),),
        needs_gpu=True, cuda_version=cuda, privileged=privileged,
    )


class TestContainers:
    def test_docker_to_singularity_preserves_content(self):
        docker = tf_image()
        sing = singularity_from_docker(docker)
        assert sing.format == "singularity"
        assert sing.layers == docker.layers
        assert sing.digest() == docker.digest()

    def test_conversion_drops_privilege(self):
        sing = singularity_from_docker(tf_image(privileged=True))
        assert not sing.privileged

    def test_conversion_requires_docker_source(self):
        sing = singularity_from_docker(tf_image())
        with pytest.raises(ContainerError):
            singularity_from_docker(sing)

    def test_image_validation(self):
        with pytest.raises(ContainerError):
            ContainerImage("x", "1", "rkt", layers=("a",))
        with pytest.raises(ContainerError):
            ContainerImage("x", "1", "docker", layers=())
        with pytest.raises(ContainerError):
            ContainerImage("x", "1", "docker", layers=("a",), needs_gpu=True)

    def test_registry_push_pull(self):
        reg = ContainerRegistry()
        reg.push(tf_image())
        image = reg.pull("tensorflow/tensorflow:2.5.0-gpu")
        assert image.needs_gpu
        assert reg.pull_count["tensorflow/tensorflow:2.5.0-gpu"] == 1

    def test_registry_missing_image(self):
        with pytest.raises(ContainerError):
            ContainerRegistry().pull("ghost:latest")

    def test_registry_tags(self):
        reg = ContainerRegistry()
        reg.push(tf_image())
        assert reg.tags("tensorflow/tensorflow") == ["2.5.0-gpu"]

    def test_juwels_runs_converted_gpu_image(self):
        runtime = juwels_singularity(driver_cuda="11.2")
        sing = singularity_from_docker(tf_image(cuda="11.0"))
        token = runtime.run(sing)
        assert "juwels-singularity" in token

    def test_juwels_refuses_docker_format(self):
        ok, reason = juwels_singularity().can_run(tf_image())
        assert not ok and "singularity" in reason

    def test_hpc_refuses_privileged(self):
        # A privileged singularity image (hand-built) must be rejected.
        img = ContainerImage("evil", "1", "singularity", layers=("l",),
                             privileged=True)
        ok, reason = juwels_singularity().can_run(img)
        assert not ok and "privileged" in reason

    def test_cuda_driver_compatibility(self):
        old_driver = juwels_singularity(driver_cuda="10.2")
        sing = singularity_from_docker(tf_image(cuda="11.0"))
        ok, reason = old_driver.can_run(sing)
        assert not ok and "CUDA" in reason

    def test_cloud_runs_docker_directly(self):
        assert cloud_docker().can_run(tf_image())[0]


class TestJupyter:
    def _kernel(self):
        return JupyterKernelSpec(
            name="dl-kernel",
            modules=(("Python", "3.9.6"), ("TensorFlow", None),
                     ("CUDA", "11.2")),
            python_packages=("pandas", "scikit-learn"),
        )

    def test_resolve_against_jsc_stack(self):
        resolved = self._kernel().resolve(jsc_module_environment())
        assert resolved["Python"] == "3.9.6"
        assert resolved["TensorFlow"] == "2.5.0"   # newest when unconstrained
        assert resolved["CUDA"] == "11.2"

    def test_version_mismatch_fails_loudly(self):
        kernel = JupyterKernelSpec(
            name="old", modules=(("TensorFlow", "1.15.0"),))
        with pytest.raises(KernelError):
            kernel.resolve(jsc_module_environment())

    def test_missing_module_fails(self):
        kernel = JupyterKernelSpec(name="x", modules=(("Caffe", None),))
        with pytest.raises(KernelError):
            kernel.resolve(jsc_module_environment())

    def test_session_abstracts_hpc_away(self):
        session = JupyterSession(self._kernel(), jsc_module_environment(),
                                 target_module="booster").start()
        out = session.execute("model.fit(x, y)")
        assert "JUWELS" in out
        with pytest.raises(KernelError):
            session.execute("#SBATCH --nodes=4")

    def test_session_requires_start(self):
        session = JupyterSession(self._kernel(), jsc_module_environment(),
                                 target_module="dam")
        with pytest.raises(KernelError):
            session.execute("1+1")

    def test_kernel_to_container_migration(self):
        image = self._kernel().to_container()
        assert image.format == "docker"
        assert image.needs_gpu                       # CUDA module present
        assert any("pip:pandas" in layer for layer in image.layers)
        # The migrated kernel runs on a cloud docker runtime.
        assert cloud_docker().can_run(image)[0]


class TestCbrain:
    def _portal(self):
        portal = CbrainPortal()
        bigbrain = DataLadDataset("bigbrain", "2020.1", size_TB=2.5)
        tool_image = ContainerImage(
            "bigbrain-segment", "1.0", format="docker",
            layers=("ubuntu:20.04", "pip:nibabel"),
        )
        portal.register_tool(NeuroTool("segment", tool_image,
                                       requires_dataset=bigbrain))
        juwels = Bourreau("bourreau-juwels", "JUWELS", juwels_singularity())
        canada = Bourreau("bourreau-cc", "ComputeCanada", cloud_docker())
        juwels.install_dataset(bigbrain)
        portal.register_bourreau(juwels)
        portal.register_bourreau(canada)
        return portal, juwels, canada, bigbrain

    def test_sites_listed(self):
        portal, *_ = self._portal()
        assert portal.sites == ["ComputeCanada", "JUWELS"]

    def test_runnable_sites_respect_datasets(self):
        portal, *_ = self._portal()
        # ComputeCanada lacks the DataLad dataset.
        assert portal.runnable_sites("segment") == ["JUWELS"]

    def test_launch_routes_transparently(self):
        portal, juwels, *_ = self._portal()
        token = portal.launch("segment")
        assert "juwels-singularity" in token
        assert juwels.executions == ["segment@JUWELS"]

    def test_launch_on_unprepared_site_fails(self):
        portal, *_ = self._portal()
        with pytest.raises(CbrainError):
            portal.launch("segment", site="ComputeCanada")

    def test_unknown_tool(self):
        portal, *_ = self._portal()
        with pytest.raises(CbrainError):
            portal.launch("ghost-tool")

    def test_dataset_install_enables_site(self):
        portal, _, canada, bigbrain = self._portal()
        canada.install_dataset(bigbrain)
        assert portal.runnable_sites("segment") == ["ComputeCanada", "JUWELS"]

    def test_bourreau_requires_dataset(self):
        _, juwels, *_ = self._portal()
        other = DataLadDataset("hcp", "1.0", size_TB=80.0)
        tool = NeuroTool("x", ContainerImage("x", "1", "docker",
                                             layers=("l",)),
                         requires_dataset=other)
        with pytest.raises(CbrainError):
            juwels.execute(tool)


class TestCloudCosts:
    def test_paper_rate_encoded(self):
        assert AWS_P3_16XLARGE.usd_per_hour == 24.0
        assert AWS_P3_16XLARGE.gpus_per_instance == 8

    def test_128_gpu_campaign_cost(self):
        """The paper's scenario: 128 GPUs for many hours — unaffordable
        without grants."""
        model = CloudCostModel()
        campaign = CampaignSpec(n_gpus=128, hours_per_run=10, n_runs=5)
        cost = model.cloud_cost_usd(campaign)
        assert cost == pytest.approx(16 * 24.0 * 10 * 5)  # $19,200
        assert cost > 10_000

    def test_grant_is_free_within_allocation(self):
        model = CloudCostModel()
        campaign = CampaignSpec(n_gpus=128, hours_per_run=10, n_runs=5)
        assert model.grant_cost_usd(campaign, grant_gpu_hours=10_000) == 0.0

    def test_grant_exhaustion_raises(self):
        model = CloudCostModel()
        campaign = CampaignSpec(n_gpus=128, hours_per_run=100)
        with pytest.raises(ValueError):
            model.grant_cost_usd(campaign, grant_gpu_hours=100)

    def test_free_tier_cannot_do_scaling_studies(self):
        model = CloudCostModel(instance=FREE_TIER_COLAB)
        assert not model.speedup_study_feasible(max_gpus=8)
        with pytest.raises(ValueError):
            model.cloud_cost_usd(CampaignSpec(n_gpus=8, hours_per_run=1))

    def test_instance_packing(self):
        assert AWS_P3_16XLARGE.instances_for(128) == 16
        assert AWS_P3_16XLARGE.instances_for(9) == 2
        with pytest.raises(ValueError):
            AWS_P3_16XLARGE.instances_for(0)
